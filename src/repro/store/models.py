"""Versioned model artifacts of the campaign store (``repro-model/v1``).

A model artifact freezes one fitted prediction model -- the RFE
feature selection, original-space coefficients, the journal offset of
the training cursor, a digest of the exact training samples and the
drift metrics at save time -- plus the full streaming-trainer state,
so a later ``repro train`` resumes from the artifact without replaying
consumed journal records.

Artifacts live under ``<store>/models/`` next to the journal, one JSON
file per (target, core, version), written with the same
atomic-replace + fsync discipline as the journal: a crash leaves
either the previous version set or the new one, never a torn file.
Versions are monotonically assigned by :meth:`ModelStore.save`; older
versions are never rewritten.  This module is the *only* sanctioned
serialization path for fitted-model state (reprolint RPR010).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..errors import CampaignError

#: Format tag of the model-artifact schema.
MODEL_FORMAT = "repro-model/v1"
#: Subdirectory of a campaign store holding model artifacts.
MODELS_DIR = "models"

_ARTIFACT_RE = re.compile(r"^(?P<target>[a-z]+)-core(?P<core>\d+)-v(?P<version>\d+)\.json$")


def train_set_digest(pairs: Iterable[Tuple[str, float]]) -> str:
    """Order-independent SHA-256 over (tag, target) training pairs.

    Two trainers that consumed the same sample *set* -- regardless of
    journal order or chunking -- produce the same digest, which is how
    an artifact proves which data a model was fitted on.
    """
    lines = sorted(f"{tag}\t{float(y)!r}" for tag, y in pairs)
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class ModelArtifact:
    """One fitted model, JSON-round-trippable byte-identically."""

    #: Prediction target: ``"vmin"`` or ``"severity"``.
    target: str
    core: int
    #: Monotonic artifact version; 0 until :meth:`ModelStore.save`
    #: assigns one.
    version: int
    #: Journal records consumed by the training cursor; resuming
    #: passes this as ``start`` to ``iter_journal_datasets``.
    journal_offset: int
    #: Digest of the machine spec the training store is bound to.
    spec_digest: str
    #: Full feature space the trainer observes (model input columns).
    feature_names: Tuple[str, ...]
    #: RFE-surviving features (forced features appended).  Empty while
    #: the journal has too few samples to select from -- the artifact
    #: then checkpoints trainer state but is not servable yet.
    selected_features: Tuple[str, ...]
    #: Zero-variance columns excluded from elimination.
    dropped_constant: Tuple[str, ...]
    #: Original-space weights, keyed by selected feature.
    coefficients: Dict[str, float]
    intercept: float
    #: The naive baseline's constant prediction (training-target mean).
    naive_mean: float
    n_samples: int
    #: Order-independent digest of the consumed (tag, target) pairs.
    train_digest: str
    #: Drift/fit metrics at save time (see streaming trainer).
    metrics: Dict[str, float]
    #: Full streaming-trainer state for kill-and-resume.
    trainer_state: Dict[str, Any]

    @property
    def is_servable(self) -> bool:
        """Whether the artifact carries a usable model."""
        return bool(self.selected_features)

    # -- serving -----------------------------------------------------------

    def predict_row(self, features: Mapping[str, float]) -> float:
        """Predict one sample given a feature-name -> value mapping."""
        if not self.is_servable:
            raise CampaignError(
                f"model artifact {self.target}/core{self.core} v{self.version} "
                "has no selected features yet (journal too shallow)"
            )
        missing = [n for n in self.selected_features if n not in features]
        if missing:
            raise CampaignError(f"prediction input missing features: {missing}")
        return float(
            self.intercept
            + sum(
                self.coefficients[name] * float(features[name])
                for name in self.selected_features
            )
        )

    def predict_dataset(self, dataset: Any) -> "np.ndarray":
        """Predict every row of a full-feature-space RegressionDataset."""
        if not self.is_servable:
            raise CampaignError(
                f"model artifact {self.target}/core{self.core} v{self.version} "
                "has no selected features yet (journal too shallow)"
            )
        sub = dataset.select_features(self.selected_features)
        coef = np.array(
            [self.coefficients[name] for name in self.selected_features]
        )
        result: "np.ndarray" = self.intercept + sub.x @ coef
        return result

    # -- JSON codec --------------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "format": MODEL_FORMAT,
            "target": self.target,
            "core": self.core,
            "version": self.version,
            "journal_offset": self.journal_offset,
            "spec_digest": self.spec_digest,
            "feature_names": list(self.feature_names),
            "selected_features": list(self.selected_features),
            "dropped_constant": list(self.dropped_constant),
            "coefficients": {k: float(v) for k, v in self.coefficients.items()},
            "intercept": self.intercept,
            "naive_mean": self.naive_mean,
            "n_samples": self.n_samples,
            "train_digest": self.train_digest,
            "metrics": {k: float(v) for k, v in self.metrics.items()},
            "trainer_state": self.trainer_state,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ModelArtifact":
        fmt = data.get("format")
        if fmt != MODEL_FORMAT:
            raise CampaignError(
                f"unsupported model-artifact format {fmt!r} "
                f"(expected {MODEL_FORMAT!r})"
            )
        try:
            return cls(
                target=str(data["target"]),
                core=int(data["core"]),
                version=int(data["version"]),
                journal_offset=int(data["journal_offset"]),
                spec_digest=str(data["spec_digest"]),
                feature_names=tuple(str(n) for n in data["feature_names"]),
                selected_features=tuple(
                    str(n) for n in data["selected_features"]
                ),
                dropped_constant=tuple(
                    str(n) for n in data["dropped_constant"]
                ),
                coefficients={
                    str(k): float(v)
                    for k, v in data["coefficients"].items()
                },
                intercept=float(data["intercept"]),
                naive_mean=float(data["naive_mean"]),
                n_samples=int(data["n_samples"]),
                train_digest=str(data["train_digest"]),
                metrics={
                    str(k): float(v) for k, v in data["metrics"].items()
                },
                trainer_state=dict(data["trainer_state"]),
            )
        except (KeyError, ValueError, TypeError, AttributeError) as exc:
            raise CampaignError(f"malformed model artifact: {exc}")

    def serialize(self) -> str:
        """Canonical file payload; stable bytes for a given artifact."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"


class ModelStore:
    """Versioned artifact files under a campaign store directory."""

    def __init__(
        self,
        directory: Union[str, Path],
        expected_spec_digest: Optional[str] = None,
    ) -> None:
        self.directory = Path(directory)
        self.expected_spec_digest = expected_spec_digest

    @property
    def models_path(self) -> Path:
        return self.directory / MODELS_DIR

    def path_for(self, target: str, core: int, version: int) -> Path:
        return self.models_path / f"{target}-core{core}-v{version}.json"

    # -- enumeration -------------------------------------------------------

    def versions(self, target: str, core: int) -> List[int]:
        """Saved versions of one (target, core) series, ascending."""
        found: List[int] = []
        if not self.models_path.exists():
            return found
        for entry in self.models_path.iterdir():
            match = _ARTIFACT_RE.match(entry.name)
            if (
                match
                and match.group("target") == target
                and int(match.group("core")) == core
            ):
                found.append(int(match.group("version")))
        return sorted(found)

    def series(self) -> List[Tuple[str, int]]:
        """Every (target, core) pair with at least one saved version."""
        pairs = set()
        if self.models_path.exists():
            for entry in self.models_path.iterdir():
                match = _ARTIFACT_RE.match(entry.name)
                if match:
                    pairs.add(
                        (match.group("target"), int(match.group("core")))
                    )
        return sorted(pairs)

    # -- persistence -------------------------------------------------------

    def save(self, artifact: ModelArtifact) -> ModelArtifact:
        """Persist as the next version of its (target, core) series.

        The version is assigned here (monotonic, never reused) and the
        file is written atomically: payload to a temp file, fsync, then
        ``os.replace`` -- the journal's crash discipline.
        """
        self._check_digest(artifact.spec_digest, "save")
        known = self.versions(artifact.target, artifact.core)
        version = (known[-1] + 1) if known else 1
        stamped = dataclasses.replace(artifact, version=version)
        self.models_path.mkdir(parents=True, exist_ok=True)
        path = self.path_for(artifact.target, artifact.core, version)
        temp = path.with_suffix(".json.tmp")
        with temp.open("w", encoding="utf-8") as handle:
            handle.write(stamped.serialize())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
        return stamped

    def load(
        self, target: str, core: int, version: Optional[int] = None
    ) -> ModelArtifact:
        """Load one artifact; ``version=None`` loads the latest."""
        if version is None:
            known = self.versions(target, core)
            if not known:
                raise CampaignError(
                    f"no model artifacts for {target!r} on core {core} "
                    f"under {self.models_path}"
                )
            version = known[-1]
        path = self.path_for(target, core, version)
        if not path.exists():
            raise CampaignError(f"no model artifact at {path}")
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise CampaignError(f"corrupt model artifact {path}: {exc}")
        artifact = ModelArtifact.from_json_dict(data)
        if (artifact.target, artifact.core, artifact.version) != (
            target, core, version,
        ):
            raise CampaignError(
                f"model artifact {path} is mislabeled: contains "
                f"{artifact.target}/core{artifact.core} v{artifact.version}"
            )
        self._check_digest(artifact.spec_digest, "load")
        return artifact

    def latest_artifacts(self) -> List[ModelArtifact]:
        """The newest artifact of every (target, core) series."""
        return [self.load(target, core) for target, core in self.series()]

    def _check_digest(self, digest: str, action: str) -> None:
        if (
            self.expected_spec_digest is not None
            and digest != self.expected_spec_digest
        ):
            raise CampaignError(
                f"cannot {action} model artifact: its machine-spec digest "
                "does not match this campaign store's manifest"
            )


__all__ = [
    "MODEL_FORMAT",
    "MODELS_DIR",
    "ModelArtifact",
    "ModelStore",
    "train_set_digest",
]
