"""Relative power / performance arithmetic.

All of the paper's savings percentages reduce to two formulas (see
DESIGN.md section 5 for the point-by-point validation):

* power relative to nominal: ``(V/V0)^2 * mean_pmd(f_eff/f0)``;
* performance relative to nominal: ``mean_task(f_task/f0)`` (every
  task equally weighted, which is how Figure 9's 87.5/75/62.5/50 %
  steps arise from slowing one PMD pair at a time).

The optional ``clock_tree_fraction`` reproduces Figure 9's divergent
760 mV point (see :class:`repro.hardware.power.PowerModel`).
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigurationError
from ..hardware.corners import corner_for_chip
from ..hardware.power import PowerModel
from ..units import FREQ_MAX_MHZ, PMD_NOMINAL_MV, validate_voltage_mv


def _power_model(chip: str, clock_tree_fraction: float) -> PowerModel:
    return PowerModel(
        corner=corner_for_chip(chip), clock_tree_fraction=clock_tree_fraction
    )


def relative_power(
    voltage_mv: int,
    pmd_freqs_mhz: Sequence[int] = (FREQ_MAX_MHZ,) * 4,
    chip: str = "TTT",
    clock_tree_fraction: float = 0.0,
) -> float:
    """PMD-domain power relative to nominal (the Figure-9 x-axis)."""
    validate_voltage_mv(voltage_mv)
    return _power_model(chip, clock_tree_fraction).pmd_power_rel(
        voltage_mv, list(pmd_freqs_mhz)
    )


def relative_performance(pmd_freqs_mhz: Sequence[int]) -> float:
    """Equal-weight task throughput relative to all-PMDs-at-2.4 GHz."""
    if not pmd_freqs_mhz:
        raise ConfigurationError("need at least one PMD frequency")
    return sum(f / FREQ_MAX_MHZ for f in pmd_freqs_mhz) / len(pmd_freqs_mhz)


def energy_saving_fraction(
    voltage_mv: int,
    pmd_freqs_mhz: Sequence[int] = (FREQ_MAX_MHZ,) * 4,
    chip: str = "TTT",
    clock_tree_fraction: float = 0.0,
) -> float:
    """Power saving versus nominal operation, as a fraction.

    With all PMDs at full frequency this is ``1 - (V/980)^2`` -- the
    paper's 19.4 % (885 mV), 12.8 % (915 mV) and 15.7/18.4 % guardband
    figures all come from this expression.
    """
    return 1.0 - relative_power(
        voltage_mv, pmd_freqs_mhz, chip, clock_tree_fraction
    )


def guardband_saving_fraction(vmin_mv: int) -> float:
    """Saving unlocked by running at a measured Vmin at full speed."""
    validate_voltage_mv(vmin_mv)
    return 1.0 - (vmin_mv / PMD_NOMINAL_MV) ** 2
