"""The Figure-9 energy-performance ladder.

Scenario (Section 5): eight benchmarks run simultaneously, one per
core, on the TTT chip -- bwaves, cactusADM, dealII, gromacs, leslie3d,
mcf, milc, namd.  Because all PMDs share one voltage plane, the chip
voltage is pinned by the most demanding (benchmark, core) pair; but
frequency is per-PMD, so slowing the *weakest* PMDs to 1.2 GHz (where
every program is safe at 760 mV) progressively releases the voltage
constraint of the remaining full-speed PMDs:

====  ==========================  =========  ==========  =========
step  PMDs at 1.2 GHz             chip Vdd   perf (rel)  power (rel)
====  ==========================  =========  ==========  =========
0     none                        915 mV     100 %       87.2 %
1     PMD0                        900 mV     87.5 %      73.8 %
2     PMD0,3                      885 mV     75 %        61.2 %
3     PMD0,3,1                    875 mV     62.5 %      49.8 %
4     all                         760 mV     50 %        30.1 %*
====  ==========================  =========  ==========  =========

(*) the paper's prose says 69.9 % saving here; its Figure 9 shows
37.6 % power instead -- pass ``clock_tree_fraction=0.25`` to reproduce
the figure's value (see DESIGN.md section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..data.calibration import chip_calibration
from ..errors import ConfigurationError
from ..units import FREQ_MAX_MHZ, PMD_NOMINAL_MV
from ..workloads.spec2006 import benchmark as get_benchmark
from .model import relative_performance, relative_power

#: The eight simultaneous benchmarks of the Figure-9 workload.
FIGURE9_WORKLOAD: Tuple[str, ...] = (
    "bwaves", "cactusADM", "dealII", "gromacs",
    "leslie3d", "mcf", "milc", "namd",
)

#: Task placement that reproduces the paper's ladder: leslie3d lands on
#: the most sensitive core (core 0 -> its 915 mV chip Vmin, the
#: Section-5 example), and each PMD's constraint then matches the
#: figure's voltage steps.
FIGURE9_PLACEMENT: Mapping[str, int] = {
    "leslie3d": 0, "cactusADM": 1, "milc": 2, "gromacs": 3,
    "mcf": 4, "namd": 5, "dealII": 6, "bwaves": 7,
}


@dataclass(frozen=True)
class TradeoffPoint:
    """One step of the ladder."""

    label: str
    chip_voltage_mv: int
    pmd_freqs_mhz: Tuple[int, int, int, int]
    performance_rel: float
    power_rel: float

    @property
    def saving_fraction(self) -> float:
        return 1.0 - self.power_rel

    @property
    def performance_loss_fraction(self) -> float:
        return 1.0 - self.performance_rel


def _chip_vmin_for(
    vmin_by_core: Mapping[int, int],
    slow_pmds: Sequence[int],
    vmin_1200_mv: int,
) -> int:
    """Chip voltage constraint: max Vmin over full-speed cores, but
    never below what the slowed (1.2 GHz) cores themselves need."""
    fast = [
        vmin for core, vmin in vmin_by_core.items() if core // 2 not in slow_pmds
    ]
    constraint = max(fast) if fast else 0
    return max(constraint, vmin_1200_mv)


def ladder_from_vmins(
    vmin_by_core: Mapping[int, int],
    chip: str = "TTT",
    clock_tree_fraction: float = 0.0,
    include_nominal: bool = True,
) -> List[TradeoffPoint]:
    """Build the ladder from per-core Vmin constraints.

    PMDs are slowed weakest-first (highest per-PMD Vmin constraint
    first); each step re-evaluates the shared-plane voltage.
    """
    if set(vmin_by_core) - set(range(8)):
        raise ConfigurationError("vmin_by_core keys must be core indices 0..7")
    if not vmin_by_core:
        raise ConfigurationError("need at least one core constraint")
    calibration = chip_calibration(chip)
    vmin_1200 = calibration.vmin_1200_mv

    pmd_constraint: Dict[int, int] = {}
    for core, vmin in vmin_by_core.items():
        pmd = core // 2
        pmd_constraint[pmd] = max(pmd_constraint.get(pmd, 0), vmin)
    weakest_first = sorted(pmd_constraint, key=lambda p: -pmd_constraint[p])

    points: List[TradeoffPoint] = []
    if include_nominal:
        freqs = (FREQ_MAX_MHZ,) * 4
        points.append(
            TradeoffPoint(
                label="nominal",
                chip_voltage_mv=PMD_NOMINAL_MV,
                pmd_freqs_mhz=freqs,
                performance_rel=1.0,
                power_rel=relative_power(
                    PMD_NOMINAL_MV, freqs, chip, clock_tree_fraction
                ),
            )
        )
    for n_slow in range(len(weakest_first) + 1):
        slow = weakest_first[:n_slow]
        freqs = tuple(
            1200 if pmd in slow else FREQ_MAX_MHZ for pmd in range(4)
        )
        voltage = _chip_vmin_for(vmin_by_core, slow, vmin_1200)
        label = "undervolt" if n_slow == 0 else (
            "slow PMD" + "+".join(str(p) for p in slow)
        )
        points.append(
            TradeoffPoint(
                label=label,
                chip_voltage_mv=voltage,
                pmd_freqs_mhz=freqs,
                performance_rel=relative_performance(freqs),
                power_rel=relative_power(voltage, freqs, chip, clock_tree_fraction),
            )
        )
    return points


def figure9_vmins(
    chip: str = "TTT",
    placement: Optional[Mapping[str, int]] = None,
) -> Dict[int, int]:
    """Per-core Vmin constraints of the Figure-9 workload placement,
    from the calibration anchors."""
    placement = dict(placement or FIGURE9_PLACEMENT)
    if sorted(placement.values()) != list(range(8)):
        raise ConfigurationError("placement must assign all 8 cores exactly once")
    calibration = chip_calibration(chip)
    out: Dict[int, int] = {}
    for name, core in placement.items():
        bench = get_benchmark(name)
        out[core] = calibration.vmin_mv(core, bench.stress)
    return out


def figure9_ladder(
    chip: str = "TTT",
    clock_tree_fraction: float = 0.0,
    placement: Optional[Mapping[str, int]] = None,
) -> List[TradeoffPoint]:
    """The complete Figure-9 point series for the paper's scenario."""
    return ladder_from_vmins(
        figure9_vmins(chip, placement),
        chip=chip,
        clock_tree_fraction=clock_tree_fraction,
    )
