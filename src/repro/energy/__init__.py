"""Energy-performance trade-off analysis (Section 5 / Figure 9).

* :mod:`repro.energy.model` -- relative power/performance arithmetic.
* :mod:`repro.energy.savings` -- the paper's headline savings numbers
  and the Section-6 finer-voltage-domain ablation.
* :mod:`repro.energy.tradeoffs` -- the Figure-9 ladder: progressively
  slowing the weakest PMDs to unlock deeper undervolting.
"""

from .model import (
    energy_saving_fraction,
    relative_performance,
    relative_power,
)
from .savings import (
    HeadlineSavings,
    finer_domains_ablation,
    headline_savings,
)
from .tradeoffs import (
    FIGURE9_PLACEMENT,
    FIGURE9_WORKLOAD,
    TradeoffPoint,
    figure9_ladder,
    ladder_from_vmins,
)

__all__ = [
    "energy_saving_fraction",
    "relative_performance",
    "relative_power",
    "HeadlineSavings",
    "finer_domains_ablation",
    "headline_savings",
    "FIGURE9_PLACEMENT",
    "FIGURE9_WORKLOAD",
    "TradeoffPoint",
    "figure9_ladder",
    "ladder_from_vmins",
]
