"""The paper's headline savings numbers, computed from the model.

Abstract / Section 5:

* **19.4 %** energy saving without compromising performance --
  leslie3d's most robust PMD runs safely at 880 mV;
* **12.8 %** chip-wide saving when the shared plane must satisfy the
  most sensitive PMD (915 mV);
* **38.8 %** saving at 25 % performance loss (two weakest PMDs at
  1.2 GHz, plane at 885 mV);
* **69.9 %** power saving at 50 % performance loss (everything at
  1.2 GHz / 760 mV).

Plus the Section-6 "finer-grained voltage domains" ablation: with one
plane per PMD each pair runs at its own Vmin instead of the chip-wide
worst case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..data.calibration import chip_calibration
from ..errors import ConfigurationError
from ..units import FREQ_MAX_MHZ, PMD_NOMINAL_MV
from ..workloads.spec2006 import benchmark as get_benchmark
from .model import guardband_saving_fraction, relative_power
from .tradeoffs import figure9_ladder, figure9_vmins


@dataclass(frozen=True)
class HeadlineSavings:
    """The four headline percentages, as fractions."""

    robust_core_full_speed: float       # paper: 0.194
    chip_wide_full_speed: float         # paper: 0.128
    two_pmds_slowed: float              # paper: 0.388
    all_slowed_power: float             # paper: 0.699
    all_slowed_performance_loss: float  # paper: 0.50

    def as_percent(self) -> Dict[str, float]:
        """Rounded percentage view for reports."""
        return {
            "robust_core_full_speed_pct": round(100 * self.robust_core_full_speed, 1),
            "chip_wide_full_speed_pct": round(100 * self.chip_wide_full_speed, 1),
            "two_pmds_slowed_pct": round(100 * self.two_pmds_slowed, 1),
            "all_slowed_power_pct": round(100 * self.all_slowed_power, 1),
            "all_slowed_performance_loss_pct": round(
                100 * self.all_slowed_performance_loss, 1
            ),
        }


def headline_savings(chip: str = "TTT") -> HeadlineSavings:
    """Compute the abstract's numbers from the calibrated model."""
    calibration = chip_calibration(chip)
    leslie = get_benchmark("leslie3d")
    robust_vmin = calibration.vmin_mv(calibration.most_robust_core(), leslie.stress)
    sensitive_vmin = calibration.vmin_mv(
        calibration.most_sensitive_core(), leslie.stress
    )
    ladder = figure9_ladder(chip)
    two_slowed = next(
        point for point in ladder if abs(point.performance_rel - 0.75) < 1e-9
    )
    all_slowed = next(
        point for point in ladder if abs(point.performance_rel - 0.50) < 1e-9
    )
    return HeadlineSavings(
        robust_core_full_speed=guardband_saving_fraction(robust_vmin),
        chip_wide_full_speed=guardband_saving_fraction(sensitive_vmin),
        two_pmds_slowed=two_slowed.saving_fraction,
        all_slowed_power=all_slowed.saving_fraction,
        all_slowed_performance_loss=all_slowed.performance_loss_fraction,
    )


@dataclass(frozen=True)
class FinerDomainsAblation:
    """Section-6 ablation: shared plane vs one plane per PMD."""

    shared_plane_power_rel: float
    per_pmd_power_rel: float

    @property
    def extra_saving_fraction(self) -> float:
        """Additional saving unlocked by per-PMD planes."""
        return self.shared_plane_power_rel - self.per_pmd_power_rel


def finer_domains_ablation(
    chip: str = "TTT",
    vmin_by_core: Optional[Mapping[int, int]] = None,
) -> FinerDomainsAblation:
    """Quantify the finer-grained-voltage-domain design enhancement.

    With the stock shared plane the whole chip runs at the worst per-
    core Vmin; with per-PMD planes each PMD runs at its own worst-of-
    two-cores Vmin.  Uses the Figure-9 workload by default.
    """
    vmins = (
        dict(vmin_by_core) if vmin_by_core is not None else figure9_vmins(chip)
    )
    if not vmins:
        raise ConfigurationError("need at least one core constraint")
    freqs = [FREQ_MAX_MHZ] * 4
    shared_voltage = max(vmins.values())
    shared = relative_power(shared_voltage, freqs, chip)

    per_pmd_total = 0.0
    active_pmds = sorted({core // 2 for core in vmins})
    for pmd in range(4):
        if pmd in active_pmds:
            pmd_voltage = max(
                vmin for core, vmin in vmins.items() if core // 2 == pmd
            )
        else:
            pmd_voltage = PMD_NOMINAL_MV
        # One PMD at (V, 2.4 GHz) contributes a quarter of the relative
        # metric, by the power model's normalisation.
        per_pmd_total += relative_power(pmd_voltage, freqs, chip) / 4.0
    return FinerDomainsAblation(
        shared_plane_power_rel=shared,
        per_pmd_power_rel=per_pmd_total,
    )
