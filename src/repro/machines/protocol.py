"""The ``Machine`` protocol: what a characterizable machine *is*.

The paper's framework treats the machine as an opaque surface -- it
programs voltages through SLIMpro, launches programs, reads the serial
console and presses the watchdog's two buttons.  This module writes
that surface down as a :class:`typing.Protocol`, so every consumer
(:class:`~repro.core.framework.CharacterizationFramework`,
:class:`~repro.core.watchdog.WatchdogMonitor`, the scheduling
simulation, the prediction pipeline, the parallel engine) depends on
the *surface* instead of the concrete
:class:`~repro.hardware.xgene2.XGene2Machine` class.

A second silicon backend only has to satisfy this protocol (and
register its component models with :mod:`repro.machines.registry`) to
run under every framework in the library unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Protocol, runtime_checkable


@runtime_checkable
class Machine(Protocol):
    """Structural type of a characterizable machine.

    Attributes are grouped by the consumer that relies on them; a
    conforming implementation provides all of them.  ``isinstance``
    checks are supported (``runtime_checkable``) and verify member
    *presence* only, as usual for protocols.
    """

    #: Liveness timeout the external watchdog assumes, logical ticks.
    HEARTBEAT_TIMEOUT_TICKS: int

    # -- identity & configuration (spec capture, prediction reports) -----
    chip: Any
    seed: int
    protection: Any
    failure_profile: Optional[str]
    use_cache_models: bool

    # -- extension component slots (see repro.machines.registry) ---------
    droop_model: Optional[Any]
    adaptive_clock: Optional[Any]
    temperature_sensitivity: Optional[Any]
    aging_model: Optional[Any]
    rollback_unit: Optional[Any]
    injector: Optional[Any]

    # -- control-plane handles (framework, watchdog, simulation) ---------
    regulator: Any
    clocks: Any
    slimpro: Any
    console: Any
    fan: Any
    power_model: Any

    # -- state surface ----------------------------------------------------
    @property
    def state(self) -> Any: ...

    @property
    def tick(self) -> int: ...

    @property
    def stress_hours(self) -> float: ...

    # -- physical controls (the watchdog's buttons) -----------------------
    def power_on(self) -> None: ...

    def power_off(self) -> None: ...

    def press_reset(self) -> None: ...

    def is_responsive(self) -> bool: ...

    # -- execution surface ------------------------------------------------
    def run_program(
        self, program: Any, core: int, timeout_s: Optional[float] = None
    ) -> Any: ...

    def profile_program(self, program: Any, core: int = 0) -> Dict[str, float]: ...

    # -- lifetime bookkeeping --------------------------------------------
    def age(self, hours: float, activity: float = 1.0) -> None: ...

    # -- declarative capture (see repro.machines.spec) --------------------
    def to_spec(self) -> Any: ...
