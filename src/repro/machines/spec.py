"""The declarative machine blueprint.

:class:`MachineSpec` is everything needed to rebuild a machine from
scratch -- constructor configuration, extension component models and
the lifetime state that shifts failure anchors (accumulated stress
hours, fan setpoint).  It is

* **picklable** -- worker processes of the parallel engine receive the
  spec and rebuild their own machine (see :mod:`repro.parallel`);
* **JSON-serializable** -- :meth:`to_json_dict`/:meth:`from_json_dict`
  round-trip through plain dicts, so specs live in config files
  (``repro characterize --machine spec.json``);
* **complete** -- ``spec.build().to_spec() == spec`` for every
  registered component model, which is what makes parallel
  characterization bit-identical to serial for *every* machine.

Component models round-trip through the codec registry
(:mod:`repro.machines.registry`); a machine carrying an unregistered
third-party model raises :class:`~repro.errors.ConfigurationError`
at capture time with a pointer to
:func:`~repro.machines.registry.register_component`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from ..data.calibration import CHIP_NAMES, ChipCalibration
from ..errors import ConfigurationError
from ..faults.manifestation import ProtectionConfig
from ..units import CHARACTERIZATION_TEMP_C
from .registry import (
    COMPONENT_SLOTS,
    clone_component,
    codec_for,
    component_from_spec,
    component_to_spec,
    is_registered,
)

#: Format tag written into serialized spec files.
SPEC_FORMAT = "repro-machine-spec/v1"


def chip_to_json(chip: Any) -> Any:
    """Serialize a chip reference: a part name stays a string, a full
    chip object becomes a plain dict (identity + calibration + corner)."""
    if isinstance(chip, str):
        return chip
    return {
        "name": chip.name,
        "serial": chip.serial,
        "calibration": dataclasses.asdict(chip.calibration),
        "corner": dataclasses.asdict(chip.corner),
    }


def chip_from_json(data: Any) -> Any:
    """Inverse of :func:`chip_to_json`."""
    if isinstance(data, str):
        return data
    from ..hardware.corners import ProcessCorner
    from ..hardware.xgene2 import XGene2Chip

    calibration = dict(data["calibration"])
    calibration["core_offsets_mv"] = tuple(calibration["core_offsets_mv"])
    return XGene2Chip(
        name=data["name"],
        calibration=ChipCalibration(**calibration),
        corner=ProcessCorner(**data["corner"]),
        serial=data.get("serial", ""),
    )


@dataclass(frozen=True)
class MachineSpec:
    """Everything needed to rebuild a machine from scratch.

    ``chip`` is a part name ("TTT"/"TFF"/"TSS") or a full
    :class:`~repro.hardware.xgene2.XGene2Chip` (e.g. a generated fleet
    part).  The component slots hold registered extension models (see
    :mod:`repro.machines.registry`); ``stress_hours`` and
    ``fan_setpoint_c`` capture the lifetime state those models read,
    so an aged or hot machine rebuilds into an equally aged or hot one.
    """

    chip: Any = "TTT"
    seed: int = 2017
    protection: ProtectionConfig = field(default_factory=ProtectionConfig)
    per_pmd_domains: bool = False
    failure_profile: Optional[str] = None
    use_cache_models: bool = True
    droop_model: Optional[Any] = None
    adaptive_clock: Optional[Any] = None
    temperature_sensitivity: Optional[Any] = None
    aging_model: Optional[Any] = None
    rollback_unit: Optional[Any] = None
    injector: Optional[Any] = None
    #: Accumulated full-activity operating hours (aging-model input).
    stress_hours: float = 0.0
    #: Fan setpoint when it differs from the 43 C characterization
    #: default; ``None`` means "as characterized".
    fan_setpoint_c: Optional[float] = None

    def __post_init__(self) -> None:
        if self.stress_hours < 0:
            raise ConfigurationError("stress_hours must be non-negative")
        for slot, model in self.components().items():
            codec = codec_for(model)  # raises for unregistered types
            if codec.slot != slot:
                raise ConfigurationError(
                    f"{type(model).__name__} is registered for slot "
                    f"{codec.slot!r} but was passed as {slot!r}"
                )

    # -- component access --------------------------------------------------

    def components(self) -> Dict[str, Any]:
        """The populated component slots, in constructor order."""
        return {
            slot: getattr(self, slot)
            for slot in COMPONENT_SLOTS
            if getattr(self, slot) is not None
        }

    # -- capture -----------------------------------------------------------

    @classmethod
    def from_machine(cls, machine: Any) -> "MachineSpec":
        """Capture a machine's rebuildable configuration.

        Raises :class:`~repro.errors.ConfigurationError` when the
        machine carries component models no codec is registered for
        (register third-party models with
        :func:`repro.machines.register_component`).
        """
        unregistered = [
            f"{slot} ({type(getattr(machine, slot)).__name__})"
            for slot in COMPONENT_SLOTS
            if getattr(machine, slot) is not None
            and not is_registered(type(getattr(machine, slot)))
        ]
        if unregistered:
            raise ConfigurationError(
                "machine carries component models without a registered "
                "codec: " + ", ".join(unregistered) + "; register them "
                "with repro.machines.register_component so specs can "
                "rebuild them"
            )
        chip: Any = machine.chip
        if chip.name in CHIP_NAMES and chip == type(chip).part(chip.name):
            chip = chip.name  # canonical part: ship the name, not the object
        fan_setpoint = float(machine.fan.setpoint_c)
        if fan_setpoint == CHARACTERIZATION_TEMP_C:
            fan_setpoint = None
        return cls(
            chip=chip,
            seed=machine.seed,
            protection=machine.protection,
            per_pmd_domains=machine.regulator.per_pmd_domains,
            failure_profile=machine.failure_profile,
            use_cache_models=machine.use_cache_models,
            stress_hours=machine.stress_hours,
            fan_setpoint_c=fan_setpoint,
            **{
                slot: getattr(machine, slot)
                for slot in COMPONENT_SLOTS
                if getattr(machine, slot) is not None
            },
        )

    # -- construction ------------------------------------------------------

    def build(self, seed: Optional[int] = None, power_on: bool = True) -> Any:
        """Construct a fresh machine from this spec.

        Component models are *cloned* through their codecs, so every
        built machine owns its own copies -- scripted mutable state
        (e.g. an injector queue) is never shared between machines, and
        repeated builds are independent and identical.
        """
        from ..hardware.xgene2 import XGene2Machine

        machine = XGene2Machine(
            chip=self.chip,
            seed=self.seed if seed is None else seed,
            protection=self.protection,
            per_pmd_domains=self.per_pmd_domains,
            failure_profile=self.failure_profile,
            use_cache_models=self.use_cache_models,
            **{
                slot: clone_component(model)
                for slot, model in self.components().items()
            },
        )
        if self.stress_hours:
            machine.age(self.stress_hours)
        if self.fan_setpoint_c is not None:
            machine.slimpro.set_fan_setpoint_c(self.fan_setpoint_c)
        if power_on:
            machine.power_on()
        return machine

    # -- JSON round-trip ---------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-dict form, safe for ``json.dumps``."""
        return {
            "format": SPEC_FORMAT,
            "chip": chip_to_json(self.chip),
            "seed": self.seed,
            "protection": dataclasses.asdict(self.protection),
            "per_pmd_domains": self.per_pmd_domains,
            "failure_profile": self.failure_profile,
            "use_cache_models": self.use_cache_models,
            "stress_hours": self.stress_hours,
            "fan_setpoint_c": self.fan_setpoint_c,
            "components": {
                slot: component_to_spec(model)
                for slot, model in self.components().items()
            },
        }

    def digest(self) -> str:
        """Stable content hash of the serialized spec.

        Campaign stores embed this next to the spec JSON so a resume
        can cheaply verify it is replaying onto the machine blueprint
        the journal was recorded against.
        """
        payload = json.dumps(self.to_json_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "MachineSpec":
        """Inverse of :meth:`to_json_dict`."""
        fmt = data.get("format", SPEC_FORMAT)
        if fmt != SPEC_FORMAT:
            raise ConfigurationError(
                f"unsupported machine-spec format {fmt!r} "
                f"(expected {SPEC_FORMAT!r})"
            )
        components = {
            slot: component_from_spec(payload)
            for slot, payload in dict(data.get("components", {})).items()
        }
        unknown_slots = set(components) - set(COMPONENT_SLOTS)
        if unknown_slots:
            raise ConfigurationError(
                f"unknown component slots in spec: {sorted(unknown_slots)}"
            )
        return cls(
            chip=chip_from_json(data.get("chip", "TTT")),
            seed=int(data.get("seed", 2017)),
            protection=ProtectionConfig(**dict(data.get("protection", {}))),
            per_pmd_domains=bool(data.get("per_pmd_domains", False)),
            failure_profile=data.get("failure_profile"),
            use_cache_models=bool(data.get("use_cache_models", True)),
            stress_hours=float(data.get("stress_hours", 0.0)),
            fan_setpoint_c=data.get("fan_setpoint_c"),
            **components,
        )
