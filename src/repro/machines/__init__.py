"""Declarative machine construction.

Three pieces (see the tentpole rationale in ``docs/api.md``):

* :class:`Machine` -- the structural protocol every consumer of a
  machine depends on, instead of the concrete
  :class:`~repro.hardware.xgene2.XGene2Machine` class;
* the component-codec **registry** -- maps extension-model classes
  (droop, adaptive clocking, temperature, aging, rollback, injection)
  to picklable, JSON-serializable payloads, and is the extension point
  for third-party models;
* :class:`MachineSpec` and the **builder** helpers -- the declarative
  blueprint that round-trips machines through worker processes and
  config files.
"""

from .builder import (
    as_machine_spec,
    build_machine,
    load_machine_spec,
    machine_to_spec,
    save_machine_spec,
    spec_from_json,
    spec_to_json,
)
from .protocol import Machine
from .registry import (
    COMPONENT_SLOTS,
    ComponentCodec,
    clone_component,
    codec_for,
    component_from_spec,
    component_to_spec,
    is_registered,
    register_component,
    registered_components,
    unregister_component,
)
from .spec import SPEC_FORMAT, MachineSpec

__all__ = [
    "COMPONENT_SLOTS",
    "ComponentCodec",
    "Machine",
    "MachineSpec",
    "SPEC_FORMAT",
    "as_machine_spec",
    "build_machine",
    "clone_component",
    "codec_for",
    "component_from_spec",
    "component_to_spec",
    "is_registered",
    "load_machine_spec",
    "machine_to_spec",
    "register_component",
    "registered_components",
    "save_machine_spec",
    "spec_from_json",
    "spec_to_json",
    "unregister_component",
]
