"""Registry of spec-constructible machine component models.

A :class:`~repro.machines.spec.MachineSpec` must round-trip every
extension model a machine carries -- droop, adaptive clocking,
temperature sensitivity, aging, rollback, scripted injection -- through
a picklable, JSON-serializable payload, because worker processes
rebuild machines from specs (see :mod:`repro.parallel`).  This module
is the extension point that makes that possible for models the library
has never seen: register a codec and your component ships to workers
and config files like the built-in ones.

A codec maps one component *class* to

* ``kind`` -- a stable string naming the model in JSON payloads;
* ``slot`` -- the machine constructor argument the model fills
  (one of :data:`COMPONENT_SLOTS`);
* ``to_payload`` / ``from_payload`` -- the JSON-dict round-trip.
  The defaults cover frozen dataclasses of plain data
  (``dataclasses.asdict`` / ``cls(**payload)``).

Lookup is by *exact* type: a subclass of a registered model is a
different model (it may override behaviour the payload cannot
express) and must register itself.  Cloning through the codec
(:func:`clone_component`) is how builders hand every rebuilt machine
its own copy of mutable components, so scripted state (e.g. a
:class:`~repro.faults.injection.FaultInjector` queue) is never shared
across machines.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..errors import ConfigurationError

#: Machine constructor slots that accept extension component models,
#: in constructor order.
COMPONENT_SLOTS: Tuple[str, ...] = (
    "droop_model",
    "adaptive_clock",
    "temperature_sensitivity",
    "aging_model",
    "rollback_unit",
    "injector",
)


@dataclass(frozen=True)
class ComponentCodec:
    """How one component class round-trips through spec payloads."""

    kind: str
    cls: type
    slot: str
    to_payload: Callable[[Any], Dict[str, Any]]
    from_payload: Callable[[Mapping[str, Any]], Any]


_BY_KIND: Dict[str, ComponentCodec] = {}
_BY_CLASS: Dict[type, ComponentCodec] = {}


def register_component(
    kind: str,
    cls: type,
    slot: str,
    to_payload: Optional[Callable[[Any], Dict[str, Any]]] = None,
    from_payload: Optional[Callable[[Mapping[str, Any]], Any]] = None,
) -> ComponentCodec:
    """Register a component model class for spec round-tripping.

    ``to_payload``/``from_payload`` default to the dataclass identity
    (``dataclasses.asdict`` / ``cls(**payload)``); models that are not
    plain dataclasses must provide both.
    """
    if slot not in COMPONENT_SLOTS:
        raise ConfigurationError(
            f"slot must be one of {COMPONENT_SLOTS}, got {slot!r}"
        )
    if kind in _BY_KIND:
        raise ConfigurationError(f"component kind {kind!r} is already registered")
    if cls in _BY_CLASS:
        raise ConfigurationError(
            f"component class {cls.__name__} is already registered "
            f"as {_BY_CLASS[cls].kind!r}"
        )
    if to_payload is None or from_payload is None:
        if not dataclasses.is_dataclass(cls):
            raise ConfigurationError(
                f"{cls.__name__} is not a dataclass; provide explicit "
                "to_payload/from_payload callables"
            )
        to_payload = to_payload or dataclasses.asdict
        from_payload = from_payload or (lambda payload: cls(**payload))
    codec = ComponentCodec(
        kind=kind, cls=cls, slot=slot,
        to_payload=to_payload, from_payload=from_payload,
    )
    _BY_KIND[kind] = codec
    _BY_CLASS[cls] = codec
    return codec


def unregister_component(kind: str) -> None:
    """Remove a registration (primarily for tests and plugin teardown)."""
    codec = _BY_KIND.pop(kind, None)
    if codec is None:
        raise ConfigurationError(f"component kind {kind!r} is not registered")
    _BY_CLASS.pop(codec.cls, None)


def registered_components() -> Tuple[ComponentCodec, ...]:
    """All registered codecs, in registration order."""
    return tuple(_BY_KIND.values())


def is_registered(cls: type) -> bool:
    """Whether a component class has a codec (exact type match)."""
    return cls in _BY_CLASS


def codec_for(model: Any) -> ComponentCodec:
    """Codec of a component instance; raises for unregistered types."""
    codec = _BY_CLASS.get(type(model))
    if codec is None:
        raise ConfigurationError(
            f"no registered machine-component codec for "
            f"{type(model).__name__}; register it with "
            "repro.machines.register_component(kind, cls, slot) so specs "
            "can rebuild it in worker processes and config files"
        )
    return codec


def component_to_spec(model: Any) -> Dict[str, Any]:
    """Serialize one component instance to its JSON-ready spec dict."""
    codec = codec_for(model)
    return {"kind": codec.kind, "params": codec.to_payload(model)}


def component_from_spec(data: Mapping[str, Any]) -> Any:
    """Rebuild a component instance from a spec dict."""
    try:
        kind = data["kind"]
    except KeyError:
        raise ConfigurationError(
            f"component spec is missing its 'kind' key: {dict(data)!r}"
        ) from None
    codec = _BY_KIND.get(kind)
    if codec is None:
        raise ConfigurationError(
            f"unknown component kind {kind!r}; registered kinds: "
            f"{sorted(_BY_KIND)}"
        )
    return codec.from_payload(dict(data.get("params", {})))


def clone_component(model: Any) -> Any:
    """A fresh, equal copy of a component via its codec round-trip.

    Immutable models come back as equal instances; mutable ones (the
    fault injector) come back with their own state, which is what
    per-machine rebuilds require.
    """
    codec = codec_for(model)
    return codec.from_payload(codec.to_payload(model))


# -- built-in registrations ------------------------------------------------

def _register_builtins() -> None:
    from ..faults.injection import FaultInjector, Injection
    from ..faults.models import FunctionalUnit
    from ..hardware.dynamics import (
        AdaptiveClockingUnit,
        AgingModel,
        RollbackUnit,
        SupplyDroopModel,
        TemperatureSensitivity,
    )

    register_component("supply_droop", SupplyDroopModel, slot="droop_model")
    register_component(
        "adaptive_clocking", AdaptiveClockingUnit, slot="adaptive_clock"
    )
    register_component(
        "temperature_sensitivity", TemperatureSensitivity,
        slot="temperature_sensitivity",
    )
    register_component("aging", AgingModel, slot="aging_model")
    register_component("rollback", RollbackUnit, slot="rollback_unit")

    def injector_payload(injector: FaultInjector) -> Dict[str, Any]:
        return {
            "injections": [
                {
                    "unit": injection.unit.name,
                    "bit_positions": list(injection.bit_positions),
                    "run_index": injection.run_index,
                }
                for injection in injector.pending()
            ]
        }

    def injector_from_payload(payload: Mapping[str, Any]) -> FaultInjector:
        return FaultInjector(
            Injection(
                unit=FunctionalUnit[entry["unit"]],
                bit_positions=tuple(entry["bit_positions"]),
                run_index=entry.get("run_index"),
            )
            for entry in payload.get("injections", ())
        )

    register_component(
        "fault_injector", FaultInjector, slot="injector",
        to_payload=injector_payload, from_payload=injector_from_payload,
    )


_register_builtins()
