"""Building machines from specs, and specs from machines/files.

Thin convenience layer over :class:`~repro.machines.spec.MachineSpec`
used by :mod:`repro.config`, the CLI and the examples: one function to
build, one to capture, and a JSON file round-trip for
``--machine spec.json`` style workflows.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Union

from ..errors import ConfigurationError
from .spec import MachineSpec

SpecLike = Union[MachineSpec, str, Any]


def as_machine_spec(spec: SpecLike) -> MachineSpec:
    """Coerce a spec-like value to a :class:`MachineSpec`.

    Accepts a spec (returned unchanged), a chip name or
    :class:`~repro.hardware.xgene2.XGene2Chip` (wrapped into a default
    spec), or a machine (captured via ``to_spec()``).
    """
    if isinstance(spec, MachineSpec):
        return spec
    if isinstance(spec, str):
        return MachineSpec(chip=spec)
    if hasattr(spec, "calibration") and hasattr(spec, "corner"):
        return MachineSpec(chip=spec)  # a chip object
    if hasattr(spec, "to_spec"):
        return spec.to_spec()
    raise ConfigurationError(
        f"cannot interpret {type(spec).__name__} as a machine spec; "
        "pass a MachineSpec, a chip name/chip, or a machine"
    )


def build_machine(
    spec: SpecLike,
    seed: Optional[int] = None,
    power_on: bool = True,
) -> Any:
    """Build a fresh machine from any spec-like value."""
    return as_machine_spec(spec).build(seed=seed, power_on=power_on)


def machine_to_spec(machine: Any) -> MachineSpec:
    """Capture a machine's rebuildable configuration as a spec."""
    return MachineSpec.from_machine(machine)


def spec_to_json(spec: MachineSpec, indent: int = 2) -> str:
    """Serialize a spec to a JSON document."""
    return json.dumps(spec.to_json_dict(), indent=indent)


def spec_from_json(text: str) -> MachineSpec:
    """Parse a spec from a JSON document."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"machine spec is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"machine spec must be a JSON object, got {type(data).__name__}"
        )
    return MachineSpec.from_json_dict(data)


def save_machine_spec(spec: MachineSpec, path: Union[str, Path]) -> Path:
    """Write a spec to a JSON file; returns the path written."""
    path = Path(path)
    path.write_text(spec_to_json(spec) + "\n", encoding="utf-8")
    return path


def load_machine_spec(path: Union[str, Path]) -> MachineSpec:
    """Read a spec from a JSON file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(f"cannot read machine spec {path}: {exc}") from exc
    return spec_from_json(text)
