"""Vectorized batch-evaluation kernel for voltage-sweep campaigns.

The scalar path (:meth:`CharacterizationFramework.run_campaign` ->
:meth:`XGene2Machine.run_program` -> :meth:`EffectSampler.sample`)
rebuilds the per-unit failure models and re-walks every probability
curve once per run.  For a campaign that is pure overhead: within one
campaign the curves are fixed functions of voltage, and the voltage
schedule is known up front.

This module compiles that fault surface **once per campaign** into a
:class:`VoltageTable` -- per-voltage arrays of every quantity the
scalar path evaluates (clock/uncore SC probability, the SRAM Poisson
event rates of every cache level, SDC and timing-crash probabilities,
the SDC->CE conversion of the protection-coverage ablation), indexed by
``(nominal_mv - vdd_mv) // step_mv`` -- and then replays the campaign
loop against O(1) table lookups.

Bit-identical randomness
------------------------

The contract is that the batch path produces **bit-identical**
:class:`~repro.core.runs.RunRecord` streams (and raw log bytes) to the
scalar path.  Every run draws from the same per-run ``Generator`` the
machine would have built (same SHA-256 digest of
``seed|chip|program|core|voltage|freq|run_counter``, same PCG64
stream), reproduced without per-run ``default_rng`` construction by
:class:`RunGeneratorFactory`, which vectorizes numpy's ``SeedSequence``
entropy pool mix across all runs of a schedule chunk and then programs
a single reusable PCG64 with the resulting 128-bit state per run.

The per-run draw order of the scalar path (see
:meth:`EffectSampler.sample`) is collapsed into **one**
``rng.random(n)`` block per run using two stream facts of numpy's
PCG64 double path:

* ``rng.random(n)`` yields exactly the same values as ``n`` successive
  ``rng.random()`` calls (prefix property), so over-drawing is
  harmless as long as nothing reads the stream afterwards -- and every
  conditional draw of the scalar path is resolved inside the block;
* for ``lam < 10`` numpy's Poisson sampler uses the multiplication
  method, whose count is zero **iff** its first uniform is
  ``<= exp(-lam)``, consuming exactly one uniform from the same double
  stream (``lam == 0`` consumes nothing, ``lam >= 10`` switches to the
  PTRS algorithm and disqualifies the shortcut).

A run whose block shows any non-zero cache event count (or a voltage
step where some rate reaches the PTRS regime) is *replayed*: the
generator state is reset to the run's start and the campaign-persistent
:class:`EffectSampler` samples it scalar-style -- bit-identical by
construction, and rare by design (non-zero counts cluster in the crash
region where SC dominates).

The kernel is engaged by :class:`CharacterizationFramework` via the
machine's ``compile_batch_table`` hook and falls back to the scalar
path whenever the machine declines to compile (scripted injections
pending, unknown extension components, an undervolted SoC domain --
see :meth:`XGene2Machine.compile_batch_table`).
"""

from __future__ import annotations

import hashlib
import math
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..effects import EffectType, normalize_effects
from ..errors import CampaignError
from ..units import CHARACTERIZATION_TEMP_C, PMD_NOMINAL_MV, VOLTAGE_FLOOR_MV, VOLTAGE_STEP_MV
from .campaign import CampaignResult
from .effects import classify_run
from .runs import CharacterizationSetup, RunRecord
from .watchdog import WatchdogAction

__all__ = [
    "CampaignKernel",
    "RunGeneratorFactory",
    "VoltageTable",
    "compile_voltage_table",
]

#: numpy switches from the multiplication method to the PTRS algorithm
#: at this Poisson rate; only below it does the one-uniform zero test
#: hold.
_POISSON_PTRS_LAM = 10.0

_SC_EFFECTS = frozenset({EffectType.SC})
_NO_EFFECTS = frozenset({EffectType.NO})

# ---------------------------------------------------------------------------
# Per-run generator states without per-run SeedSequence construction
# ---------------------------------------------------------------------------

# numpy SeedSequence entropy-pool constants (Melissa O'Neill's seeding
# algorithm, as implemented in numpy.random.bit_generator).
_INIT_A = np.uint32(0x43B0D7E5)
_MULT_A = np.uint32(0x931E8875)
_INIT_B = np.uint32(0x8B51F9DD)
_MULT_B = np.uint32(0x58F38DED)
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)
_XSHIFT = np.uint32(16)
#: PCG64's 128-bit LCG multiplier, split into 64-bit limbs for the
#: vectorized seeding arithmetic.
_PCG_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_PCG_MULT_HI = np.uint64(_PCG_MULT >> 64)
_PCG_MULT_LO = np.uint64(_PCG_MULT & 0xFFFFFFFFFFFFFFFF)
_MASK32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)


def _hashmix_chain(init: int, mult: int, count: int) -> np.ndarray:
    """The deterministic hash-constant chain ``hc *= mult`` (mod 2**32).

    SeedSequence's pool mix advances ``hc`` once per hashmix call, so
    the whole chain is known ahead of time and every per-source batch
    of hashmixes can run with a precomputed constant column.
    """
    out = [init]
    hc = init
    for _ in range(count):
        hc = (hc * mult) & 0xFFFFFFFF
        out.append(hc)
    return np.array(out, dtype=np.uint32)


#: hc chain of mix_entropy: 4 pool-init + 12 churn + 16 fold hashmixes.
_HCS = _hashmix_chain(0x43B0D7E5, 0x931E8875, 32)
#: hc chain of generate_state: 8 output-word hashmixes.
_GCS = _hashmix_chain(0x8B51F9DD, 0x58F38DED, 8)
#: Per-stage (hc-before, hc-after) constant columns for broadcasting.
_HC_INIT1 = _HCS[0:4].reshape(4, 1)
_HC_INIT2 = _HCS[1:5].reshape(4, 1)
_HC_CHURN1 = tuple(_HCS[4 + 3 * s : 7 + 3 * s].reshape(3, 1) for s in range(4))
_HC_CHURN2 = tuple(_HCS[5 + 3 * s : 8 + 3 * s].reshape(3, 1) for s in range(4))
_HC_FOLD1 = tuple(_HCS[16 + 4 * s : 20 + 4 * s].reshape(4, 1) for s in range(4))
_HC_FOLD2 = tuple(_HCS[17 + 4 * s : 21 + 4 * s].reshape(4, 1) for s in range(4))
_GC1 = _GCS[0:8].reshape(8, 1)
_GC2 = _GCS[1:9].reshape(8, 1)
#: Churn destinations: every pool word except the source itself.
_CHURN_DST = tuple(
    np.array([j for j in range(4) if j != s]) for s in range(4)
)


def _mul128(
    a_hi: np.ndarray, a_lo: np.ndarray, b_hi: np.uint64, b_lo: np.uint64
) -> Tuple[np.ndarray, np.ndarray]:
    """``(a_hi, a_lo) * (b_hi, b_lo) mod 2**128`` over 64-bit limbs.

    The only widening product needed is ``a_lo * b_lo``, computed via
    32-bit half-limbs; the cross terms wrap in the high limb.
    """
    a0 = a_lo & _MASK32
    a1 = a_lo >> _SHIFT32
    b0 = b_lo & _MASK32
    b1 = b_lo >> _SHIFT32
    p0 = a0 * b0
    p1 = a0 * b1
    p2 = a1 * b0
    mid = (p0 >> _SHIFT32) + (p1 & _MASK32) + (p2 & _MASK32)
    lo = (p0 & _MASK32) | (mid << _SHIFT32)
    hi = (
        a1 * b1
        + (p1 >> _SHIFT32)
        + (p2 >> _SHIFT32)
        + (mid >> _SHIFT32)
        + a_lo * b_hi
        + a_hi * b_lo
    )
    return hi, lo


class RunGeneratorFactory:
    """Replays ``np.random.default_rng(sha256(key))`` streams cheaply.

    ``seed_states`` derives the 128-bit PCG64 ``(state, inc)`` pair of
    every key in one vectorized pass (the SeedSequence pool mix runs on
    uint32 arrays spanning all keys); ``activate`` programs a single
    reusable bit generator with one such pair.  Per-run construction
    cost drops from ~30us (``default_rng``) to ~2us amortized.

    The uint64 -> uint32 entropy word split assumes a little-endian
    platform (as numpy's own ``frombuffer`` view does everywhere else
    in this codebase).
    """

    def __init__(self) -> None:
        # reprolint: disable=RPR011 -- placeholder template; activate() overwrites the full (state, inc) pair with a sha256-derived one before any draw
        self._bitgen = np.random.PCG64(0)
        #: The reusable generator; valid between ``activate`` calls.
        self.generator = np.random.Generator(self._bitgen)
        self._template = self._bitgen.state

    def seed_states(self, keys: Sequence[bytes]) -> List[Tuple[int, int]]:
        """PCG64 ``(state, inc)`` of ``default_rng(sha256(key))`` per key."""
        limbs = self.seed_limbs(keys)
        if limbs is None:
            return []
        return self.fold_states(limbs)

    @staticmethod
    def fold_states(
        limbs: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    ) -> List[Tuple[int, int]]:
        """Limb arrays folded into ``(state, inc)`` python-int pairs."""
        st_hi, st_lo, inc_hi, inc_lo = limbs
        state_his = st_hi.tolist()
        state_los = st_lo.tolist()
        inc_his = inc_hi.tolist()
        inc_los = inc_lo.tolist()
        return [
            (
                (state_his[i] << 64) | state_los[i],
                (inc_his[i] << 64) | inc_los[i],
            )
            for i in range(len(state_his))
        ]

    def seed_limbs(
        self, keys: Sequence[bytes]
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """``(state_hi, state_lo, inc_hi, inc_lo)`` uint64 limb arrays.

        The pool mix runs batched per hashmix *source*: with the hash
        constants precomputed (:func:`_hashmix_chain`), every source's
        destinations update in one ``(rows, n)`` matrix operation, so
        the ufunc-call count is independent of both the key count and
        the per-pair structure of SeedSequence's mix.  Returns None for
        an empty key list.
        """
        n = len(keys)
        if n == 0:
            return None
        entropy = np.frombuffer(
            b"".join([hashlib.sha256(key).digest() for key in keys]),
            dtype=np.uint64,
        ).reshape(n, 4)
        # Little-endian: each uint64 entropy word becomes (low, high)
        # uint32 words, matching SeedSequence's coercion.  Transposing
        # to C order makes every per-word row contiguous (and ours to
        # mutate).
        words = np.ascontiguousarray(entropy.view(np.uint32).reshape(n, 8).T)
        with np.errstate(over="ignore"):
            # mix_entropy: hashmix the first four entropy words into the
            # pool in one batched pass...
            pool = (words[:4] ^ _HC_INIT1) * _HC_INIT2
            pool ^= pool >> _XSHIFT
            # ...churn the pool (per source, the three other pool words
            # mix with that source's three hashmix variants at once)...
            for s in range(4):
                m = (pool[s] ^ _HC_CHURN1[s]) * _HC_CHURN2[s]
                m ^= m >> _XSHIFT
                m *= _MIX_MULT_R
                idx = _CHURN_DST[s]
                d = pool[idx]
                d *= _MIX_MULT_L
                d -= m
                d ^= d >> _XSHIFT
                pool[idx] = d
            # ...then fold the remaining entropy words into all four
            # pool words, one batched mix per source.
            for s in range(4):
                m = (words[4 + s] ^ _HC_FOLD1[s]) * _HC_FOLD2[s]
                m ^= m >> _XSHIFT
                m *= _MIX_MULT_R
                pool *= _MIX_MULT_L
                pool -= m
                pool ^= pool >> _XSHIFT
            # generate_state(4, uint64) == 8 hashed uint32 words (the
            # pool read twice over), folded into four uint64 rows.
            g = (np.concatenate((pool, pool)) ^ _GC1) * _GC2
            g ^= g >> _XSHIFT
            folded = g[0::2].astype(np.uint64) | (
                g[1::2].astype(np.uint64) << _SHIFT32
            )
            w0, w1, w2, w3 = folded
            # PCG64 seeding, in 64-bit limbs: inc = (stream << 1) | 1,
            # state = ((inc + seed) * MULT + inc) mod 2^128, where
            # seed = (w0, w1) and stream = (w2, w3) hi/lo.
            one = np.uint64(1)
            s63 = np.uint64(63)
            inc_hi = (w2 << one) | (w3 >> s63)
            inc_lo = (w3 << one) | one
            t_lo = inc_lo + w1
            t_hi = inc_hi + w0 + (t_lo < inc_lo)
            p_hi, p_lo = _mul128(t_hi, t_lo, _PCG_MULT_HI, _PCG_MULT_LO)
            st_lo = p_lo + inc_lo
            st_hi = p_hi + inc_hi + (st_lo < p_lo)
        return st_hi, st_lo, inc_hi, inc_lo

    #: Per-draw LCG jump constants ``A_j = MULT**j`` and
    #: ``B_j = (MULT**j - 1) / (MULT - 1)`` (mod 2**128) as python
    #: ints, extended on demand; ``_STEP_ARRAYS`` caches the limb /
    #: half-limb column arrays per requested block width.
    _STEP_A: List[int] = []
    _STEP_B: List[int] = []
    _STEP_ARRAYS: Dict[int, Tuple[np.ndarray, ...]] = {}

    @classmethod
    def _step_arrays(cls, n_draws: int) -> Tuple[np.ndarray, ...]:
        """Column-vector jump constants for an ``n_draws``-wide block."""
        cached = cls._STEP_ARRAYS.get(n_draws)
        if cached is not None:
            return cached
        mask = (1 << 128) - 1
        while len(cls._STEP_A) < n_draws:
            if cls._STEP_A:
                a = (cls._STEP_A[-1] * _PCG_MULT) & mask
                b = (cls._STEP_B[-1] * _PCG_MULT + 1) & mask
            else:
                # Draw 0 reads the state after one advance.
                a, b = _PCG_MULT, 1
            cls._STEP_A.append(a)
            cls._STEP_B.append(b)
        m64 = 0xFFFFFFFFFFFFFFFF
        column = lambda vals: np.array(  # noqa: E731
            vals, dtype=np.uint64
        ).reshape(n_draws, 1)
        a_lo = column([a & m64 for a in cls._STEP_A[:n_draws]])
        b_lo = column([b & m64 for b in cls._STEP_B[:n_draws]])
        arrays = (
            column([a >> 64 for a in cls._STEP_A[:n_draws]]),
            a_lo,
            a_lo & _MASK32,
            a_lo >> _SHIFT32,
            column([b >> 64 for b in cls._STEP_B[:n_draws]]),
            b_lo,
            b_lo & _MASK32,
            b_lo >> _SHIFT32,
        )
        cls._STEP_ARRAYS[n_draws] = arrays
        return arrays

    @classmethod
    def uniform_block(
        cls,
        limbs: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        n_draws: int,
    ) -> np.ndarray:
        """First ``n_draws`` doubles of every stream, shape ``(n, k)``.

        Vectorized PCG64 (XSL-RR output on 64-bit limbs), bit-identical
        to ``Generator(PCG64(...)).random(n_draws)`` per stream.
        Instead of stepping the LCG sequentially, every (draw, stream)
        state is computed in one closed-form broadcast --
        ``state_j = A_j * state_0 + B_j * inc`` with precomputed jump
        constants -- so the ufunc count is independent of the draw
        count and the per-call overhead of small-array ops amortizes
        over the whole ``(k, n)`` grid.  The limb arrays are not
        mutated.
        """
        st_hi, st_lo, inc_hi, inc_lo = limbs
        a_hi, a_lo, a0, a1, b_hi, b_lo, b0, b1 = cls._step_arrays(n_draws)
        s11 = np.uint64(11)
        s58 = np.uint64(58)
        s63 = np.uint64(63)
        s64 = np.uint64(64)
        scale = 1.0 / 9007199254740992.0  # 2**-53
        with np.errstate(over="ignore"):
            # (k, 1) jump constants x (n,) stream limbs -> (k, n)
            # states after j+1 advances, in two full 128-bit broadcast
            # products (the half-limb splits of the constants are
            # precomputed).
            c0 = st_lo & _MASK32
            c1 = st_lo >> _SHIFT32
            p0 = a0 * c0
            p1 = a0 * c1
            p2 = a1 * c0
            mid = (p0 >> _SHIFT32) + (p1 & _MASK32) + (p2 & _MASK32)
            lo_a = (p0 & _MASK32) | (mid << _SHIFT32)
            hi_a = (
                a1 * c1
                + (p1 >> _SHIFT32)
                + (p2 >> _SHIFT32)
                + (mid >> _SHIFT32)
                + a_lo * st_hi
                + a_hi * st_lo
            )
            c0 = inc_lo & _MASK32
            c1 = inc_lo >> _SHIFT32
            p0 = b0 * c0
            p1 = b0 * c1
            p2 = b1 * c0
            mid = (p0 >> _SHIFT32) + (p1 & _MASK32) + (p2 & _MASK32)
            lo = (p0 & _MASK32) | (mid << _SHIFT32)
            lo += lo_a
            hi_a += (
                b1 * c1
                + (p1 >> _SHIFT32)
                + (p2 >> _SHIFT32)
                + (mid >> _SHIFT32)
                + b_lo * inc_hi
                + b_hi * inc_lo
            )
            hi_a += lo < lo_a
            # out64 = rotr64(hi ^ lo, hi >> 58); double = (out64 >> 11)
            # * 2**-53.
            x = hi_a ^ lo
            rot = hi_a >> s58
            lshift = x << ((s64 - rot) & s63)
            x >>= rot
            x |= lshift
            x >>= s11
            out = x * scale
        return out.T

    def activate(self, state: Tuple[int, int]) -> np.random.Generator:
        """Point the shared generator at one run's stream start."""
        template = self._template
        template["state"]["state"] = state[0]
        template["state"]["inc"] = state[1]
        template["has_uint32"] = 0
        template["uinteger"] = 0
        self._bitgen.state = template
        return self.generator


# ---------------------------------------------------------------------------
# The compiled fault surface
# ---------------------------------------------------------------------------


class _StepPlan:
    """Everything :meth:`VoltageTable.sample_run` needs at one voltage."""

    __slots__ = (
        "voltage_mv",
        "p_sc",
        "thresholds",
        "n_channels",
        "conv",
        "p_ac",
        "p_sdc",
        "p_ce",
        "p_ue",
        "n_uniform",
        "analytic",
    )


class VoltageTable:
    """Per-voltage fault surface of one (program, core, freq) setup.

    Built by :func:`compile_voltage_table`; every probability is the
    *exact* float the scalar path computes at run time (the compile
    loop calls the same curve code, it just calls it once per voltage
    instead of once per run).  ``sampler`` is kept for the rare replay
    path and stays valid for the whole campaign because the sampler is
    stateless across runs.
    """

    __slots__ = (
        "program",
        "core",
        "freq_mhz",
        "chip_name",
        "nominal_mv",
        "step_mv",
        "voltages",
        "sampler",
        "rollback_coverage",
        "ue_ac_fraction",
        "expected_output",
        "_plans",
        "_power",
    )

    def __init__(
        self,
        program: object,
        core: int,
        freq_mhz: int,
        chip_name: str,
        nominal_mv: int,
        step_mv: int,
        voltages: Tuple[int, ...],
        plans: List[Optional[_StepPlan]],
        sampler: object,
        rollback_coverage: Optional[float],
        expected_output: str,
    ) -> None:
        self.program = program
        self.core = core
        self.freq_mhz = freq_mhz
        self.chip_name = chip_name
        self.nominal_mv = nominal_mv
        self.step_mv = step_mv
        self.voltages = voltages
        self._plans = plans
        self.sampler = sampler
        self.rollback_coverage = rollback_coverage
        self.ue_ac_fraction = sampler.ue_ac_fraction
        self.expected_output = expected_output
        self._power: Dict[int, float] = {}

    def index_of(self, voltage_mv: int) -> int:
        """Table row of a scheduled voltage (the O(1) grid lookup)."""
        idx = (self.nominal_mv - voltage_mv) // self.step_mv
        if not 0 <= idx < len(self._plans) or self.voltages[idx] != voltage_mv:
            raise CampaignError(
                f"voltage {voltage_mv} mV outside the compiled table"
            )
        return idx

    def plan(self, vidx: int) -> _StepPlan:
        """The materialized row at one index.

        Rows are materialized on first visit and memoized: a campaign
        stopped by the crash-level rule touches a dozen of the 50+ grid
        rows, so evaluating the curves eagerly for the full grid would
        dominate the compile cost without being read.
        """
        plan = self._plans[vidx]
        if plan is None:
            plan = _build_plan(
                self.sampler, self.voltages[vidx], self.rollback_coverage
            )
            self._plans[vidx] = plan
        return plan

    def power_w(self, vidx: int, machine: object) -> float:
        """Chip power at one table row (memoized: V/F state is fixed
        per prepared run within a campaign)."""
        power = self._power.get(vidx)
        if power is None:
            power = machine.power_model.chip_power_w(
                self.voltages[vidx],
                machine.clocks.frequencies(),
                temp_c=CHARACTERIZATION_TEMP_C,
            )
            self._power[vidx] = power
        return power

    # -- sampling ---------------------------------------------------------

    def sample_run(
        self,
        vidx: int,
        rng: np.random.Generator,
        reset: Callable[[], object],
    ) -> Tuple[FrozenSet[EffectType], Dict[str, int]]:
        """One run's (effects, detail), bit-identical to the scalar path.

        Draws one uniform block covering every scalar draw position;
        falls back to a full scalar ``sampler.sample`` replay (against
        the generator ``reset()`` returns, positioned at the run's
        stream start) when a Poisson channel reports a non-zero event
        count.
        """
        plan = self._plans[vidx]
        if plan is None:
            plan = self.plan(vidx)
        # One stream read, then plain-float comparisons: a python float
        # list beats numpy scalar indexing by ~3x at these sizes.
        u = rng.random(plan.n_uniform).tolist()
        return self.sample_u(plan, u, reset)

    def sample_u(
        self,
        plan: "_StepPlan",
        u: List[float],
        fresh_rng: Callable[[], np.random.Generator],
    ) -> Tuple[FrozenSet[EffectType], Dict[str, int]]:
        """Classify one run from its precomputed uniform block ``u``.

        ``u`` must hold (at least) the first ``plan.n_uniform`` doubles
        of the run's stream -- excess entries are ignored, which is
        what lets a chunk share one over-drawn block width.
        ``fresh_rng`` returns a generator positioned at the run's
        stream start; it is only invoked on the scalar-replay path.
        """
        if u[0] < plan.p_sc:
            return _SC_EFFECTS, {"system_crash": 1}
        if plan.analytic:
            return self._sample_analytic(plan, u)
        thresholds = plan.thresholds
        if thresholds is None:
            return self._replay(plan, fresh_rng())
        idx = 1
        for threshold in thresholds:
            if u[idx] > threshold:
                return self._replay(plan, fresh_rng())
            idx += 1
        detail: Dict[str, int] = {}
        effects = set()
        if plan.conv > 0.0:
            if u[idx] < plan.conv:
                effects.add(EffectType.CE)
                detail["corrected_errors"] = 1
            idx += 1
        if u[idx] < plan.p_ac:
            effects.add(EffectType.AC)
            detail["application_crash"] = 1
            return normalize_effects(effects), detail
        idx += 1
        if u[idx] < plan.p_sdc:
            idx += 1
            if (
                self.rollback_coverage is not None
                and u[idx] < self.rollback_coverage
            ):
                detail["rollbacks"] = 1
            else:
                effects.add(EffectType.SDC)
                detail["output_mismatch"] = 1
        if not effects:
            return _NO_EFFECTS, detail
        return normalize_effects(effects), detail

    def _sample_analytic(self, plan: _StepPlan, u: List[float]):
        """The no-cache-models draw order (always fast-pathable)."""
        detail: Dict[str, int] = {}
        effects = set()
        ce = u[1] < plan.p_ce
        ue = u[2] < plan.p_ue
        if ce:
            effects.add(EffectType.CE)
            detail["corrected_errors"] = 1
        if ue:
            effects.add(EffectType.UE)
            detail["uncorrected_errors"] = 1
        crashed = u[3] < plan.p_ac
        idx = 4
        if not crashed and ue:
            crashed = u[idx] < self.ue_ac_fraction
            idx += 1
        if crashed:
            effects.add(EffectType.AC)
            detail["application_crash"] = 1
            return normalize_effects(effects), detail
        if u[idx] < plan.p_sdc:
            idx += 1
            if (
                self.rollback_coverage is not None
                and u[idx] < self.rollback_coverage
            ):
                detail["rollbacks"] = 1
            else:
                effects.add(EffectType.SDC)
                detail["output_mismatch"] = 1
        if not effects:
            return _NO_EFFECTS, detail
        return normalize_effects(effects), detail

    def _replay(self, plan: _StepPlan, rng: np.random.Generator):
        """Scalar-exact replay of one run; ``rng`` sits at stream start."""
        sampled = self.sampler.sample(plan.voltage_mv, rng)
        effects = sampled.effects
        detail = dict(sampled.detail)
        if (
            self.rollback_coverage is not None
            and EffectType.SDC in effects
            and rng.random() < self.rollback_coverage
        ):
            detail.pop("output_mismatch", None)
            detail["rollbacks"] = detail.get("rollbacks", 0) + 1
            effects = normalize_effects(set(effects) - {EffectType.SDC})
        return effects, detail


def _build_plan(
    sampler: object, voltage_mv: int, rollback_coverage: Optional[float]
) -> _StepPlan:
    """Materialize one grid row from the sampler's scalar curves."""
    probs = sampler.probability_table((voltage_mv,))
    stack = sampler.cache_stack
    rollback_slot = 1 if rollback_coverage is not None else 0
    plan = _StepPlan()
    plan.voltage_mv = voltage_mv
    plan.p_sc = float(probs["sc"][0])
    plan.p_ac = float(probs["ac_timing"][0])
    plan.p_sdc = float(probs["sdc"][0])
    plan.conv = float(probs["sdc_to_ce"][0])
    if stack is None:
        plan.analytic = True
        plan.thresholds = None
        plan.n_channels = 0
        plan.p_ce = float(probs["ce"][0])
        plan.p_ue = float(probs["ue"][0])
        # SC + CE + UE + AC + (UE->AC) + SDC [+ rollback]
        plan.n_uniform = 6 + rollback_slot
    else:
        plan.analytic = False
        plan.p_ce = 0.0
        plan.p_ue = 0.0
        lams = [float(lam) for lam in stack.poisson_rate_table((voltage_mv,))[0]]
        if max(lams) >= _POISSON_PTRS_LAM:
            # PTRS regime: the one-uniform zero test no longer
            # holds; every surviving run replays scalar-style.
            plan.thresholds = None
            plan.n_channels = 0
            plan.n_uniform = 1
        else:
            plan.thresholds = [math.exp(-lam) for lam in lams if lam > 0.0]
            plan.n_channels = len(plan.thresholds)
            # SC + channels + (conv) + AC + SDC [+ rollback]
            plan.n_uniform = (
                3
                + plan.n_channels
                + (1 if plan.conv > 0.0 else 0)
                + rollback_slot
            )
    return plan


def compile_voltage_table(
    sampler: object,
    program: object,
    core: int,
    freq_mhz: int,
    chip_name: str,
    expected_output: str,
    rollback_coverage: Optional[float] = None,
    nominal_mv: int = PMD_NOMINAL_MV,
    floor_mv: int = VOLTAGE_FLOOR_MV,
    step_mv: int = VOLTAGE_STEP_MV,
) -> VoltageTable:
    """Lay out the sampler's fault surface over the full sweep grid.

    All probabilities come from the sampler's own scalar evaluation
    methods (:meth:`EffectSampler.probability_table`,
    :meth:`CacheStack.poisson_rate_table`), so every table entry is
    bit-equal to what the scalar path would compute per run;
    ``exp(-lam)`` thresholds use :func:`math.exp` to match numpy's C
    Poisson implementation to the last ulp.  Rows are materialized on
    first visit (see :meth:`VoltageTable.plan`).
    """
    voltages = tuple(range(nominal_mv, floor_mv - 1, -step_mv))
    plans: List[Optional[_StepPlan]] = [None] * len(voltages)
    return VoltageTable(
        program=program,
        core=core,
        freq_mhz=freq_mhz,
        chip_name=chip_name,
        nominal_mv=nominal_mv,
        step_mv=step_mv,
        voltages=voltages,
        plans=plans,
        sampler=sampler,
        rollback_coverage=rollback_coverage,
        expected_output=expected_output,
    )


# ---------------------------------------------------------------------------
# The campaign loop against the table
# ---------------------------------------------------------------------------

#: Levels worth of generator states derived per vectorization chunk --
#: large enough to amortize the pool mix, small enough that a campaign
#: stopped by the crash-level rule wastes at most one chunk's tail (a
#: default sweep crosses the ~40-60 mV margin region in 10-13 levels
#: before the two all-crash stop levels).
_CHUNK_LEVELS = 12


class _ScheduleStates:
    """Lazily derives per-run generator states for a campaign schedule.

    Run-counter values are predictable (the machine consumes one per
    executed run, and the kernel executes the schedule prefix in
    order), so the keys of whole level chunks can be derived in one
    vectorized pass ahead of execution.
    """

    def __init__(
        self,
        factory: RunGeneratorFactory,
        machine: object,
        program_name: str,
        core: int,
        freq_mhz: int,
        schedule: Sequence[int],
        runs_per_level: int,
    ) -> None:
        self._factory = factory
        self._prefix = f"{machine.seed}|{machine.chip.name}|{program_name}|{core}|"
        self._freq_mhz = freq_mhz
        self._schedule = list(schedule)
        self._runs = runs_per_level
        self._base_counter = machine.run_counter
        self._seeded = 0
        self._chunk_limbs: List[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = []

    def level(self, level_index: int) -> List[Tuple[int, int]]:
        """The (state, inc) pairs of one level's runs, in run order."""
        start = level_index * self._runs
        return [self.state_at(start + i) for i in range(self._runs)]

    def state_at(self, index: int) -> Tuple[int, int]:
        """The (state, inc) pair of one run by schedule position.

        Folded from the chunk's limb arrays on demand -- only the
        scalar-replay path ever needs a python-int pair, so whole-chunk
        folding would be wasted work.
        """
        chunk_size = _CHUNK_LEVELS * self._runs
        chunk_index, offset = divmod(index, chunk_size)
        st_hi, st_lo, inc_hi, inc_lo = self.chunk_limbs(chunk_index)
        return (
            (int(st_hi[offset]) << 64) | int(st_lo[offset]),
            (int(inc_hi[offset]) << 64) | int(inc_lo[offset]),
        )

    def chunk_limbs(
        self, chunk_index: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Limb arrays of one seeded chunk, in level-major run order."""
        while len(self._chunk_limbs) <= chunk_index:
            self._extend()
        return self._chunk_limbs[chunk_index]

    def _extend(self) -> None:
        start_level = self._seeded // self._runs
        counter = self._base_counter + self._seeded
        keys: List[bytes] = []
        for voltage_mv in self._schedule[start_level : start_level + _CHUNK_LEVELS]:
            suffix = f"|{voltage_mv}|{self._freq_mhz}|"
            for _ in range(self._runs):
                counter += 1
                keys.append(f"{self._prefix[:-1]}{suffix}{counter}".encode())
        limbs = self._factory.seed_limbs(keys)
        if limbs is None:
            return
        self._chunk_limbs.append(limbs)
        self._seeded += len(keys)


class CampaignKernel:
    """Executes one campaign's schedule against a compiled table.

    Reproduces :meth:`CharacterizationFramework.run_campaign` exactly:
    the same machine preparation and safe-state restore per run, the
    same watchdog recovery, the same ``voltage_step`` telemetry spans,
    the same raw log text, the same crash-level stop rule -- but builds
    the :class:`RunRecord` stream directly (through the same
    :func:`classify_run` the parser applies) instead of re-parsing the
    log it just formatted.
    """

    def __init__(
        self,
        machine: object,
        table: VoltageTable,
        config: object,
        watchdog: object,
        prepare: Callable[[int, int, int], None],
        restore: Callable[[], None],
    ) -> None:
        self.machine = machine
        self.table = table
        self.config = config
        self.watchdog = watchdog
        self._prepare = prepare
        self._restore = restore
        self._factory = RunGeneratorFactory()

    def execute(
        self, schedule: Sequence[int], campaign_index: int
    ) -> Tuple[str, CampaignResult]:
        """Run the schedule; returns ``(raw_log_text, CampaignResult)``."""
        cfg = self.config
        machine = self.machine
        table = self.table
        factory = self._factory
        benchmark = table.program.name
        core = table.core
        freq_mhz = table.freq_mhz
        chip = table.chip_name
        expected = table.expected_output
        runs_per_level = cfg.runs_per_level
        states = _ScheduleStates(
            factory, machine, benchmark, core, freq_mhz, schedule, runs_per_level
        )

        prepare = self._prepare
        restore = self._restore
        activate = factory.activate
        kernel_execute = machine.kernel_execute
        is_responsive = machine.is_responsive
        ensure_alive = self.watchdog.ensure_alive
        no_action = WatchdogAction.NONE
        new_record = RunRecord.__new__

        log_parts: List[str] = []
        log_append = log_parts.append
        records: List[RunRecord] = []
        record_append = records.append
        consecutive_crash_levels = 0
        sample_u = table.sample_u
        run_global = 0
        # Reads ``run_global`` at call time, so one closure serves
        # every run; only the scalar-replay path ever invokes it.
        fresh_rng = lambda: activate(states.state_at(run_global))  # noqa: E731
        chunk_index = -1
        chunk_u: List[List[float]] = []
        for level_index, voltage_mv in enumerate(schedule):
            vidx = table.index_of(voltage_mv)
            plan = table.plan(vidx)
            ci = level_index // _CHUNK_LEVELS
            if ci != chunk_index:
                # One vectorized PCG64 pass yields the whole chunk's
                # uniform blocks, over-drawn to the widest plan in the
                # chunk (sample_u ignores the excess columns).
                chunk_index = ci
                hi = min((ci + 1) * _CHUNK_LEVELS, len(schedule))
                width = 1
                for lvl in range(ci * _CHUNK_LEVELS, hi):
                    lvl_plan = table.plan(table.index_of(schedule[lvl]))
                    if lvl_plan.n_uniform > width:
                        width = lvl_plan.n_uniform
                chunk_u = factory.uniform_block(
                    states.chunk_limbs(ci), width
                ).tolist()
            u_base = (level_index % _CHUNK_LEVELS) * runs_per_level - 1
            setup = CharacterizationSetup(
                voltage_mv=voltage_mv, freq_mhz=freq_mhz, core=core
            )
            # Every block of this level shares its header up to the run
            # index; the bodies below must stay byte-for-byte in
            # lockstep with :func:`format_run_block` (parity is pinned
            # by the property tests in tests/test_kernel.py).
            head = (
                f"=== RUN chip={chip} benchmark={benchmark} core={core} "
                f"voltage_mv={voltage_mv} freq_mhz={freq_mhz} "
                f"campaign={campaign_index} run="
            )
            level_all_crashed = True
            with telemetry.span(
                "voltage_step", voltage_mv=voltage_mv, runs=runs_per_level
            ):
                run_global = level_index * runs_per_level - 1
                for run_index in range(1, runs_per_level + 1):
                    prepare(core, freq_mhz, voltage_mv)
                    run_global += 1
                    effects, detail = sample_u(
                        plan, chunk_u[u_base + run_index], fresh_rng
                    )
                    (
                        effects,
                        exit_code,
                        output,
                        edac_ce,
                        edac_ue,
                        locations,
                    ) = kernel_execute(table, vidx, effects, detail)
                    responsive = is_responsive()
                    action = no_action if responsive else ensure_alive()
                    restore()
                    if exit_code is None:
                        # System crash: the in-band lines were never
                        # flushed; only header + post-recovery lines.
                        log_append(
                            f"{head}{run_index} ===\n"
                            f"status=system_crash\n"
                            f"watchdog={action.value}\n"
                        )
                    else:
                        level_all_crashed = False
                        status = (
                            "completed" if exit_code == 0 else "app_crash"
                        )
                        if locations:
                            encoded = ",".join(
                                f"{key}:{count}"
                                for key, count in sorted(locations.items())
                            )
                            loc_line = f"edac_locations={encoded}\n"
                        else:
                            loc_line = ""
                        if output is None:
                            log_append(
                                f"{head}{run_index} ===\n"
                                f"exit_code={exit_code}\n"
                                f"edac_ce={edac_ce} edac_ue={edac_ue}\n"
                                f"{loc_line}"
                                f"status={status}\n"
                                f"watchdog={action.value}\n"
                            )
                        else:
                            log_append(
                                f"{head}{run_index} ===\n"
                                f"exit_code={exit_code}\n"
                                f"output={output} expected={expected}\n"
                                f"edac_ce={edac_ce} edac_ue={edac_ue}\n"
                                f"{loc_line}"
                                f"status={status}\n"
                                f"watchdog={action.value}\n"
                            )
                    # Classification goes through the same classify_run
                    # the log parser applies, fed the parser-visible
                    # observables (an unflushed output line parses as
                    # output=None/expected="").  The record is laid out
                    # directly into a fresh instance: RunRecord is a
                    # frozen dataclass, whose generated __init__ pays
                    # one object.__setattr__ per field -- the dominant
                    # cost of record construction at this scale.
                    # ``locations`` is a fresh dict owned by this run;
                    # the parser sees its entries in formatted (sorted)
                    # order, which only needs an explicit sort past one
                    # entry.
                    record = new_record(RunRecord)
                    record.__dict__.update(
                        chip=chip,
                        benchmark=benchmark,
                        setup=setup,
                        campaign_index=campaign_index,
                        run_index=run_index,
                        effects=classify_run(
                            responsive=responsive,
                            exit_code=exit_code,
                            output=output,
                            expected_output=(
                                expected if output is not None else ""
                            ),
                            edac_ce=edac_ce,
                            edac_ue=edac_ue,
                        ),
                        exit_code=exit_code,
                        output_matches=(
                            None if output is None else output == expected
                        ),
                        edac_ce=edac_ce,
                        edac_ue=edac_ue,
                        watchdog_intervened=action is not no_action,
                        detail=(
                            locations
                            if len(locations) < 2
                            else dict(sorted(locations.items()))
                        ),
                    )
                    record_append(record)
            if level_all_crashed:
                consecutive_crash_levels += 1
                if (
                    cfg.stop_mv is None
                    and consecutive_crash_levels >= cfg.stop_after_crash_levels
                ):
                    break
            else:
                consecutive_crash_levels = 0

        if not records:
            raise CampaignError("campaign produced no runs")
        result = CampaignResult(
            chip=chip,
            benchmark=benchmark,
            core=core,
            freq_mhz=freq_mhz,
            campaign_index=campaign_index,
            records=tuple(records),
        )
        return "".join(log_parts), result
