"""Result persistence: the framework's CSV outputs.

The paper's parsing phase ends in CSV files ("all the collected results
concerning the characterization and the severity function of each run
are reported in CSV files", Section 2.2).  :class:`ResultStore` writes
and reads those files: a run-level CSV, a severity CSV and the raw
campaign logs.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import CampaignError
from .campaign import CharacterizationResult
from .runs import RunRecord
from .severity import DEFAULT_WEIGHTS, SeverityWeights

RUN_FIELDS = (
    "chip", "benchmark", "core", "voltage_mv", "freq_mhz", "campaign",
    "run", "effects", "exit_code", "output_matches", "edac_ce", "edac_ue",
    "watchdog",
)

SEVERITY_FIELDS = (
    "chip", "benchmark", "core", "freq_mhz", "voltage_mv", "severity",
)


class ResultStore:
    """Directory-backed store of characterization outputs."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- run-level CSV ----------------------------------------------------

    def write_runs_csv(
        self,
        results: Iterable[CharacterizationResult],
        filename: str = "runs.csv",
    ) -> Path:
        """Write every run of every result to one CSV."""
        path = self.directory / filename
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=RUN_FIELDS)
            writer.writeheader()
            for result in results:
                for record in result.all_records():
                    writer.writerow(record.csv_row())
        return path

    def read_runs_csv(self, filename: str = "runs.csv") -> List[RunRecord]:
        """Read a run-level CSV back as typed :class:`RunRecord` rows.

        The ``detail`` mapping is not part of the CSV schema, so it is
        empty on the records returned here; everything else round-trips
        exactly through :meth:`RunRecord.from_csv_row`.
        """
        path = self.directory / filename
        if not path.exists():
            raise CampaignError(f"no such results file: {path}")
        with path.open(newline="") as handle:
            return [RunRecord.from_csv_row(row) for row in csv.DictReader(handle)]

    # -- severity CSV ---------------------------------------------------------

    def write_severity_csv(
        self,
        results: Iterable[CharacterizationResult],
        filename: str = "severity.csv",
        weights: SeverityWeights = DEFAULT_WEIGHTS,
    ) -> Path:
        """Severity per (chip, benchmark, core, voltage) to CSV."""
        path = self.directory / filename
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=SEVERITY_FIELDS)
            writer.writeheader()
            for result in results:
                severity = result.severity_by_voltage(weights)
                for voltage in sorted(severity, reverse=True):
                    writer.writerow({
                        "chip": result.chip,
                        "benchmark": result.benchmark,
                        "core": result.core,
                        "freq_mhz": result.freq_mhz,
                        "voltage_mv": voltage,
                        "severity": f"{severity[voltage]:.4f}",
                    })
        return path

    def read_severity_csv(
        self, filename: str = "severity.csv"
    ) -> Dict[Tuple[str, str, int, int, int], float]:
        """Severity CSV back as a {(chip, bench, core, freq, mV): S} map."""
        path = self.directory / filename
        if not path.exists():
            raise CampaignError(f"no such results file: {path}")
        out: Dict[Tuple[str, str, int, int, int], float] = {}
        with path.open(newline="") as handle:
            for row in csv.DictReader(handle):
                key = (
                    row["chip"], row["benchmark"], int(row["core"]),
                    int(row["freq_mhz"]), int(row["voltage_mv"]),
                )
                out[key] = float(row["severity"])
        return out

    # -- raw logs --------------------------------------------------------------

    def write_raw_log(
        self, key: Tuple[str, int, int, int], text: str
    ) -> Path:
        """Persist one campaign's raw log under a stable name."""
        benchmark, core, freq, campaign = key
        safe_bench = benchmark.replace("/", "_")
        path = (
            self.directory
            / f"log_{safe_bench}_c{core}_f{freq}_camp{campaign}.txt"
        )
        path.write_text(text)
        return path

    def write_all_raw_logs(
        self, raw_logs: Mapping[Tuple[str, int, int, int], str]
    ) -> List[Path]:
        """Persist every raw campaign log of a framework."""
        return [self.write_raw_log(key, text) for key, text in raw_logs.items()]

    def read_raw_log(self, path) -> Optional[str]:
        """Read one raw log back (None if missing)."""
        path = Path(path)
        if not path.exists():
            return None
        return path.read_text()
