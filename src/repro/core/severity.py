"""The severity function (contribution 2, Section 3.4.1).

    S_v = W_SDC*SDC/N + W_CE*CE/N + W_UE*UE/N + W_AC*AC/N + W_SC*SC/N

where each parameter counts the runs (out of N at voltage v) in which
the effect appeared, and the weights translate behaviours to numbers.
Table 4's values are the defaults:

    W_SC = 16, W_AC = 8, W_SDC = 4, W_UE = 2, W_CE = 1, W_NO = 0

The function aggregates multiple campaigns of non-deterministic runs
into one number per (core, voltage) that a software daemon -- or the
Section-4 predictor -- can consume directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping

from ..effects import SEVERITY_WEIGHTS, EffectType
from ..errors import ConfigurationError
from .effects import effect_counts


@dataclass(frozen=True)
class SeverityWeights:
    """Weight assignment for the severity function (Table 4).

    Different weights can be supplied "according to the importance of
    each observed abnormal behavior in a particular system study"; the
    defaults come from the canonical Table-4 mapping in
    :data:`repro.effects.SEVERITY_WEIGHTS`.
    """

    sc: float = SEVERITY_WEIGHTS[EffectType.SC]
    ac: float = SEVERITY_WEIGHTS[EffectType.AC]
    sdc: float = SEVERITY_WEIGHTS[EffectType.SDC]
    ue: float = SEVERITY_WEIGHTS[EffectType.UE]
    ce: float = SEVERITY_WEIGHTS[EffectType.CE]

    def __post_init__(self) -> None:
        for name in ("sc", "ac", "sdc", "ue", "ce"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"weight {name} must be non-negative")

    def weight(self, effect: EffectType) -> float:
        """Weight of one effect class (NO weighs zero)."""
        return {
            EffectType.SC: self.sc,
            EffectType.AC: self.ac,
            EffectType.SDC: self.sdc,
            EffectType.UE: self.ue,
            EffectType.CE: self.ce,
            EffectType.NO: 0.0,
        }[effect]

    @property
    def maximum(self) -> float:
        """Largest achievable severity (every run crashes the system)."""
        return self.sc


#: The paper's weights.
DEFAULT_WEIGHTS = SeverityWeights()


def severity_value(
    counts: Mapping[EffectType, int],
    n_runs: int,
    weights: SeverityWeights = DEFAULT_WEIGHTS,
) -> float:
    """Severity from per-effect run counts out of ``n_runs`` runs."""
    if n_runs <= 0:
        raise ConfigurationError("n_runs must be positive")
    for effect, count in counts.items():
        if count < 0 or count > n_runs:
            raise ConfigurationError(
                f"count for {effect} must be within [0, {n_runs}], got {count}"
            )
    return sum(
        weights.weight(effect) * count / n_runs for effect, count in counts.items()
    )


def severity_of_runs(
    runs: Iterable[FrozenSet[EffectType]],
    weights: SeverityWeights = DEFAULT_WEIGHTS,
) -> float:
    """Severity of a collection of classified runs at one voltage."""
    run_list = list(runs)
    if not run_list:
        raise ConfigurationError("severity needs at least one run")
    return severity_value(effect_counts(run_list), len(run_list), weights)


def severity_table(
    runs_by_voltage: Mapping[int, Iterable[FrozenSet[EffectType]]],
    weights: SeverityWeights = DEFAULT_WEIGHTS,
) -> Dict[int, float]:
    """Severity per voltage level -- one column of Figure 5."""
    return {
        voltage: severity_of_runs(runs, weights)
        for voltage, runs in runs_by_voltage.items()
    }


def deepest_voltage_within(
    severity_by_voltage: Mapping[int, float],
    tolerance: float = 0.0,
) -> int:
    """The severity function's headline use (Section 3.4.1): "according
    to the severity value for each voltage level, one can decide if and
    when it is possible to reduce the voltage further".

    Returns the lowest voltage such that it and every level above it
    stay within ``tolerance`` -- the contiguity requirement matters: a
    lucky quiet level below a violating one is not usable, because
    operation passes through every level's behaviour class.
    """
    if tolerance < 0:
        raise ConfigurationError("tolerance must be non-negative")
    if not severity_by_voltage:
        raise ConfigurationError("severity table must not be empty")
    deepest = None
    for voltage in sorted(severity_by_voltage, reverse=True):
        if severity_by_voltage[voltage] > tolerance:
            break
        deepest = voltage
    if deepest is None:
        raise ConfigurationError(
            f"no voltage level satisfies severity <= {tolerance}"
        )
    return deepest
