"""Run-level records of the characterization framework.

A :class:`CharacterizationSetup` is the paper's "characterization
setup": the (voltage, frequency, core) coordinates a benchmark is run
at.  A :class:`RunRecord` is one execution under one setup, carrying
both the raw observables and the parsed classification -- the unit
everything downstream (severity, regions, CSVs, prediction samples)
aggregates over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Optional

from ..effects import EffectType
from ..errors import ConfigurationError
from ..units import validate_frequency_mhz, validate_voltage_mv


@dataclass(frozen=True)
class CharacterizationSetup:
    """One point of the characterization space."""

    voltage_mv: int
    freq_mhz: int
    core: int

    def __post_init__(self) -> None:
        validate_voltage_mv(self.voltage_mv)
        validate_frequency_mhz(self.freq_mhz)
        if not 0 <= self.core <= 7:
            raise ConfigurationError(f"core must be 0..7, got {self.core}")

    def label(self) -> str:
        """Stable human-readable key, e.g. ``"c0@905mV/2400MHz"``."""
        return f"c{self.core}@{self.voltage_mv}mV/{self.freq_mhz}MHz"


@dataclass(frozen=True)
class RunRecord:
    """One classified characterization run."""

    chip: str
    benchmark: str
    setup: CharacterizationSetup
    campaign_index: int
    run_index: int
    effects: FrozenSet[EffectType]
    exit_code: Optional[int]
    output_matches: Optional[bool]
    edac_ce: int = 0
    edac_ue: int = 0
    #: True when the watchdog had to power-cycle the machine after
    #: this run.
    watchdog_intervened: bool = False
    detail: Mapping[str, int] = field(default_factory=dict)

    @property
    def is_normal(self) -> bool:
        return self.effects == frozenset({EffectType.NO})

    @property
    def crashed_system(self) -> bool:
        return EffectType.SC in self.effects

    def csv_row(self) -> Mapping[str, object]:
        """Flat mapping for the CSV result files."""
        return {
            "chip": self.chip,
            "benchmark": self.benchmark,
            "core": self.setup.core,
            "voltage_mv": self.setup.voltage_mv,
            "freq_mhz": self.setup.freq_mhz,
            "campaign": self.campaign_index,
            "run": self.run_index,
            "effects": "+".join(sorted(e.value for e in self.effects)),
            "exit_code": "" if self.exit_code is None else self.exit_code,
            "output_matches": "" if self.output_matches is None else int(self.output_matches),
            "edac_ce": self.edac_ce,
            "edac_ue": self.edac_ue,
            "watchdog": int(self.watchdog_intervened),
        }
