"""Run-level records of the characterization framework.

A :class:`CharacterizationSetup` is the paper's "characterization
setup": the (voltage, frequency, core) coordinates a benchmark is run
at.  A :class:`RunRecord` is one execution under one setup, carrying
both the raw observables and the parsed classification -- the unit
everything downstream (severity, regions, CSVs, prediction samples)
aggregates over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Mapping, Optional

from ..effects import EffectType
from ..errors import CampaignError, ConfigurationError
from ..units import validate_frequency_mhz, validate_voltage_mv


@dataclass(frozen=True)
class CharacterizationSetup:
    """One point of the characterization space."""

    voltage_mv: int
    freq_mhz: int
    core: int

    def __post_init__(self) -> None:
        validate_voltage_mv(self.voltage_mv)
        validate_frequency_mhz(self.freq_mhz)
        if not 0 <= self.core <= 7:
            raise ConfigurationError(f"core must be 0..7, got {self.core}")

    def label(self) -> str:
        """Stable human-readable key, e.g. ``"c0@905mV/2400MHz"``."""
        return f"c{self.core}@{self.voltage_mv}mV/{self.freq_mhz}MHz"


@dataclass(frozen=True)
class RunRecord:
    """One classified characterization run."""

    chip: str
    benchmark: str
    setup: CharacterizationSetup
    campaign_index: int
    run_index: int
    effects: FrozenSet[EffectType]
    exit_code: Optional[int]
    output_matches: Optional[bool]
    edac_ce: int = 0
    edac_ue: int = 0
    #: True when the watchdog had to power-cycle the machine after
    #: this run.
    watchdog_intervened: bool = False
    detail: Mapping[str, int] = field(default_factory=dict)

    @property
    def is_normal(self) -> bool:
        return self.effects == frozenset({EffectType.NO})

    @property
    def crashed_system(self) -> bool:
        return EffectType.SC in self.effects

    def csv_row(self) -> Mapping[str, object]:
        """Flat mapping for the CSV result files."""
        return {
            "chip": self.chip,
            "benchmark": self.benchmark,
            "core": self.setup.core,
            "voltage_mv": self.setup.voltage_mv,
            "freq_mhz": self.setup.freq_mhz,
            "campaign": self.campaign_index,
            "run": self.run_index,
            "effects": "+".join(sorted(e.value for e in self.effects)),
            "exit_code": "" if self.exit_code is None else self.exit_code,
            "output_matches": "" if self.output_matches is None else int(self.output_matches),
            "edac_ce": self.edac_ce,
            "edac_ue": self.edac_ue,
            "watchdog": int(self.watchdog_intervened),
        }

    @classmethod
    def from_csv_row(cls, row: Mapping[str, str]) -> "RunRecord":
        """Typed inverse of :meth:`csv_row`.

        CSV cells are strings; this coerces them back to the record's
        int/bool/enum types so downstream consumers never see raw
        ``Dict[str, str]`` rows.  The per-location ``detail`` mapping is
        not part of the CSV schema and comes back empty.
        """
        try:
            exit_code = row["exit_code"]
            output_matches = row["output_matches"]
            return cls(
                chip=row["chip"],
                benchmark=row["benchmark"],
                setup=CharacterizationSetup(
                    voltage_mv=int(row["voltage_mv"]),
                    freq_mhz=int(row["freq_mhz"]),
                    core=int(row["core"]),
                ),
                campaign_index=int(row["campaign"]),
                run_index=int(row["run"]),
                effects=frozenset(
                    EffectType(value) for value in row["effects"].split("+")
                ),
                exit_code=None if exit_code == "" else int(exit_code),
                output_matches=(
                    None if output_matches == ""
                    else bool(int(output_matches))
                ),
                edac_ce=int(row["edac_ce"]),
                edac_ue=int(row["edac_ue"]),
                watchdog_intervened=bool(int(row["watchdog"])),
            )
        except (KeyError, ValueError) as exc:
            raise CampaignError(f"malformed run CSV row {dict(row)!r}: {exc}")

    # -- journal (JSONL) codec --------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-dict form for the campaign journal (``repro.store``)."""
        return {
            "chip": self.chip,
            "benchmark": self.benchmark,
            "core": self.setup.core,
            "voltage_mv": self.setup.voltage_mv,
            "freq_mhz": self.setup.freq_mhz,
            "campaign": self.campaign_index,
            "run": self.run_index,
            "effects": sorted(e.value for e in self.effects),
            "exit_code": self.exit_code,
            "output_matches": self.output_matches,
            "edac_ce": self.edac_ce,
            "edac_ue": self.edac_ue,
            "watchdog": self.watchdog_intervened,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        """Inverse of :meth:`to_json_dict` (exact, including ``detail``)."""
        try:
            return cls(
                chip=data["chip"],
                benchmark=data["benchmark"],
                setup=CharacterizationSetup(
                    voltage_mv=int(data["voltage_mv"]),
                    freq_mhz=int(data["freq_mhz"]),
                    core=int(data["core"]),
                ),
                campaign_index=int(data["campaign"]),
                run_index=int(data["run"]),
                effects=frozenset(
                    EffectType(value) for value in data["effects"]
                ),
                exit_code=(
                    None if data["exit_code"] is None else int(data["exit_code"])
                ),
                output_matches=(
                    None if data["output_matches"] is None
                    else bool(data["output_matches"])
                ),
                edac_ce=int(data["edac_ce"]),
                edac_ue=int(data["edac_ue"]),
                watchdog_intervened=bool(data["watchdog"]),
                detail={
                    str(key): int(count)
                    for key, count in dict(data.get("detail", {})).items()
                },
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise CampaignError(f"malformed journal run record: {exc}")
