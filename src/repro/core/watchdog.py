"""The external watchdog monitor (Figure 2's Raspberry Pi).

The paper wires a Raspberry Pi to the X-Gene 2's serial port and to its
power and reset buttons, because undervolting campaigns crash the
machine constantly and unattended recovery is what makes "massive"
campaigns possible.

:class:`WatchdogMonitor` is that box: it never touches the simulator's
internals -- it only reads the serial console (heartbeat, boot banner)
and presses the two physical buttons, escalating from reset to a full
power cycle when the reset does not bring the banner back.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from .. import telemetry
from ..errors import WatchdogError
from ..hardware.serial_console import BOOT_BANNER
from ..hardware import MachineState
from ..machines import Machine


class WatchdogAction(enum.Enum):
    """What the watchdog did on one liveness check."""

    NONE = "none"
    RESET = "reset"
    POWER_CYCLE = "power_cycle"


@dataclass(frozen=True)
class Intervention:
    """Log entry for one recovery action."""

    action: WatchdogAction
    tick: int
    reason: str


class WatchdogMonitor:
    """Serial-and-buttons recovery automaton.

    Parameters
    ----------
    machine:
        The board under test (only its console/button surface is used).
    timeout_ticks:
        Heartbeat staleness threshold, logical ticks; ``None`` uses the
        machine's own ``HEARTBEAT_TIMEOUT_TICKS``.
    max_power_cycles:
        Consecutive failed power cycles before declaring the board dead
        (raises :class:`~repro.errors.WatchdogError` -- a real campaign
        would page a human at this point).
    """

    def __init__(
        self,
        machine: Machine,
        timeout_ticks: Optional[int] = None,
        max_power_cycles: int = 3,
    ) -> None:
        self.machine = machine
        self.timeout_ticks = int(
            machine.HEARTBEAT_TIMEOUT_TICKS if timeout_ticks is None
            else timeout_ticks
        )
        self.max_power_cycles = int(max_power_cycles)
        self.interventions: List[Intervention] = []

    # -- liveness -----------------------------------------------------------

    def machine_alive(self) -> bool:
        """Serial-side liveness: a fresh heartbeat on the console."""
        return self.machine.console.is_alive(self.machine.tick, self.timeout_ticks)

    def _banner_seen(self) -> bool:
        return any(
            BOOT_BANNER in line for line in self.machine.console.read_new_lines()
        )

    # -- recovery -----------------------------------------------------------------

    def ensure_alive(self) -> WatchdogAction:
        """Check liveness; recover if needed.  Returns the action taken."""
        if self.machine.state is MachineState.RUNNING and self.machine_alive():
            return WatchdogAction.NONE

        # First escalation step: the reset button.
        if self.machine.state is not MachineState.OFF:
            self.machine.press_reset()
            if self._banner_seen() and self.machine_alive():
                self._log(WatchdogAction.RESET, "heartbeat stale; reset recovered")
                return WatchdogAction.RESET

        # Second step: power cycle (possibly repeatedly).
        for _attempt in range(self.max_power_cycles):
            if self.machine.state is not MachineState.OFF:
                self.machine.power_off()
            self.machine.power_on()
            if self._banner_seen() and self.machine_alive():
                self._log(WatchdogAction.POWER_CYCLE, "power cycle recovered")
                return WatchdogAction.POWER_CYCLE
        raise WatchdogError(
            f"machine did not come back after {self.max_power_cycles} power cycles"
        )

    def _log(self, action: WatchdogAction, reason: str) -> None:
        self.interventions.append(
            Intervention(action=action, tick=self.machine.tick, reason=reason)
        )
        telemetry.event(
            "watchdog.recovery",
            action=action.value,
            tick=self.machine.tick,
            reason=reason,
        )
        telemetry.inc_counter(telemetry.M_WATCHDOG, action=action.value)

    @property
    def intervention_count(self) -> int:
        return len(self.interventions)
