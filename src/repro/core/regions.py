"""Regions of operation and Vmin extraction (Section 3.1).

From the aggregated per-voltage run classifications of a benchmark on a
core, three regions emerge as the voltage drops:

* **safe** (Figure 4 blue): every run at and above this voltage was
  normal;
* **unsafe** (grey): abnormal behaviour (SDC/CE/UE/AC) but no system
  crash;
* **crash** (black): at least one run led to a system crash.

The safe Vmin is the floor of the safe region.  The extraction is
conservative against non-monotone observations: one abnormal run at a
high voltage pushes the safe floor above it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..effects import EffectType
from ..errors import CampaignError
from ..units import VOLTAGE_STEP_MV


class Region(enum.Enum):
    """Operating region of one voltage level."""

    SAFE = "safe"
    UNSAFE = "unsafe"
    CRASH = "crash"


@dataclass(frozen=True)
class OperatingRegions:
    """Region decomposition of one (chip, benchmark, core, frequency).

    ``vmin_mv`` is the safe Vmin; ``crash_mv`` the highest voltage with
    at least one system crash (None if the sweep never crashed);
    ``censored`` flags sweeps that never left the safe region, whose
    Vmin is only an upper bound.
    """

    vmin_mv: int
    crash_mv: Optional[int]
    lowest_tested_mv: int
    highest_tested_mv: int
    censored: bool = False

    def classify(self, voltage_mv: int) -> Region:
        """Region of a voltage level within the tested range."""
        if self.crash_mv is not None and voltage_mv <= self.crash_mv:
            return Region.CRASH
        if voltage_mv >= self.vmin_mv:
            return Region.SAFE
        return Region.UNSAFE

    @property
    def unsafe_width_mv(self) -> int:
        """Width of the unsafe band (0 when crashes start right below
        the safe region)."""
        floor = self.crash_mv if self.crash_mv is not None else (
            self.lowest_tested_mv - VOLTAGE_STEP_MV
        )
        return max(0, self.vmin_mv - floor - VOLTAGE_STEP_MV)

    def guardband_mv(self, nominal_mv: int) -> int:
        """Voltage guardband relative to a nominal supply."""
        return nominal_mv - self.vmin_mv


def regions_from_counts(
    counts_by_voltage: Mapping[int, Mapping[EffectType, int]],
) -> OperatingRegions:
    """Derive the regions from per-voltage effect counts.

    ``counts_by_voltage`` maps each tested voltage to its aggregated
    effect counts (all campaigns pooled -- Figures 3/4 plot the
    highest Vmin and highest crash voltage of the ten campaigns, which
    pooling yields directly).
    """
    if not counts_by_voltage:
        raise CampaignError("no voltage levels to derive regions from")
    voltages = sorted(counts_by_voltage, reverse=True)
    abnormal_levels = [
        v for v in voltages
        if any(
            count > 0 and effect is not EffectType.NO
            for effect, count in counts_by_voltage[v].items()
        )
    ]
    crash_levels = [
        v for v in voltages
        if counts_by_voltage[v].get(EffectType.SC, 0) > 0
    ]
    highest, lowest = voltages[0], voltages[-1]
    if abnormal_levels:
        vmin = max(abnormal_levels) + VOLTAGE_STEP_MV
        censored = False
        if vmin > highest:
            raise CampaignError(
                f"abnormal behaviour at the highest tested voltage "
                f"({highest} mV); extend the sweep upward"
            )
    else:
        vmin = lowest
        censored = True
    crash = max(crash_levels) if crash_levels else None
    return OperatingRegions(
        vmin_mv=vmin,
        crash_mv=crash,
        lowest_tested_mv=lowest,
        highest_tested_mv=highest,
        censored=censored,
    )


def region_map(
    regions: OperatingRegions, voltages: Iterable[int]
) -> Dict[int, Region]:
    """Region of every voltage in a sweep (Figure-4 column rendering)."""
    return {v: regions.classify(v) for v in voltages}


def campaign_vmins(
    per_campaign_counts: Iterable[Mapping[int, Mapping[EffectType, int]]],
) -> List[int]:
    """Safe Vmin of each campaign separately.

    Figures 3/4 report the *highest* of these; the green "average Vmin"
    line of Figure 4 averages them.
    """
    return [regions_from_counts(counts).vmin_mv for counts in per_campaign_counts]


def merge_counts(
    parts: Iterable[Mapping[int, Mapping[EffectType, int]]],
) -> Dict[int, Dict[EffectType, int]]:
    """Pool per-voltage effect counts across campaigns."""
    merged: Dict[int, Dict[EffectType, int]] = {}
    for part in parts:
        for voltage, counts in part.items():
            slot = merged.setdefault(voltage, {effect: 0 for effect in EffectType})
            for effect, count in counts.items():
                slot[effect] = slot.get(effect, 0) + count
    return merged


def tested_voltages(
    counts_by_voltage: Mapping[int, Mapping[EffectType, int]],
) -> Tuple[int, ...]:
    """Descending tuple of tested voltage levels."""
    return tuple(sorted(counts_by_voltage, reverse=True))
