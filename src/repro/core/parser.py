"""Parsing phase (Figure 2): raw campaign logs -> classified runs.

The execution phase appends plain-text blocks to a log (one block per
run, the shape a shell-script harness would produce); the parsing phase
turns them back into structured, classified results.  Keeping this a
real text round-trip -- rather than passing Python objects through --
preserves the paper's architecture and its failure mode: a system crash
truncates the run's block (no exit-code line is ever written), and the
parser classifies exactly from what survived.

Diagnostics go through the structured telemetry logger (silent unless
a telemetry session is active) instead of the :mod:`logging` module.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional

from .. import telemetry
from ..effects import EffectType
from ..errors import ParseError
from .effects import classify_run

_LOG = telemetry.get_logger("repro.core.parser")

#: Start-of-block marker written by the execution phase.
RUN_HEADER = "=== RUN"

_HEADER_RE = re.compile(
    r"^=== RUN chip=(?P<chip>\S+) benchmark=(?P<benchmark>\S+) "
    r"core=(?P<core>\d+) voltage_mv=(?P<voltage>\d+) freq_mhz=(?P<freq>\d+) "
    r"campaign=(?P<campaign>\d+) run=(?P<run>\d+) ===$"
)
_KV_RE = re.compile(r"(\w+)=(\S+)")


@dataclass(frozen=True)
class ParsedRun:
    """One run block, parsed and classified."""

    chip: str
    benchmark: str
    core: int
    voltage_mv: int
    freq_mhz: int
    campaign_index: int
    run_index: int
    effects: FrozenSet[EffectType]
    exit_code: Optional[int]
    output_matches: Optional[bool]
    edac_ce: int
    edac_ue: int
    watchdog_action: str
    #: Per-location error attribution (``{"ce_L2": 1, ...}``) from the
    #: execution phase's logging (Section 2.2's parser extension).
    edac_locations: Mapping[str, int] = field(default_factory=dict)


def format_run_block(
    chip: str,
    benchmark: str,
    core: int,
    voltage_mv: int,
    freq_mhz: int,
    campaign_index: int,
    run_index: int,
    exit_code: Optional[int],
    output: Optional[str],
    expected_output: str,
    edac_ce: int,
    edac_ue: int,
    responsive: bool,
    watchdog_action: str = "none",
    edac_locations: Optional[Mapping[str, int]] = None,
) -> str:
    """Render one run as the log block the execution phase stores.

    Mirrors the real framework: a system crash means the in-band lines
    (exit code, output, EDAC) were never flushed; only the header and
    the post-recovery status/watchdog lines exist.
    """
    lines = [
        f"=== RUN chip={chip} benchmark={benchmark} core={core} "
        f"voltage_mv={voltage_mv} freq_mhz={freq_mhz} "
        f"campaign={campaign_index} run={run_index} ==="
    ]
    if responsive and exit_code is not None:
        lines.append(f"exit_code={exit_code}")
        if output is not None:
            lines.append(f"output={output} expected={expected_output}")
        lines.append(f"edac_ce={edac_ce} edac_ue={edac_ue}")
        if edac_locations:
            encoded = ",".join(
                f"{key}:{count}" for key, count in sorted(edac_locations.items())
            )
            lines.append(f"edac_locations={encoded}")
        status = "completed" if exit_code == 0 else "app_crash"
    else:
        status = "system_crash"
    lines.append(f"status={status}")
    lines.append(f"watchdog={watchdog_action}")
    return "\n".join(lines) + "\n"


def _parse_block(lines: List[str]) -> ParsedRun:
    header = _HEADER_RE.match(lines[0])
    if header is None:
        _LOG.error("malformed run header", header=lines[0])
        raise ParseError(f"malformed run header: {lines[0]!r}")
    fields: Dict[str, str] = {}
    for line in lines[1:]:
        for key, value in _KV_RE.findall(line):
            fields[key] = value

    status = fields.get("status")
    if status is None:
        _LOG.error("run block missing status line", header=lines[0])
        raise ParseError(f"run block missing status line: {lines[0]!r}")
    responsive = status != "system_crash"
    exit_code = int(fields["exit_code"]) if "exit_code" in fields else None
    output = fields.get("output")
    expected = fields.get("expected", "")
    edac_ce = int(fields.get("edac_ce", 0))
    edac_ue = int(fields.get("edac_ue", 0))
    effects = classify_run(
        responsive=responsive,
        exit_code=exit_code,
        output=output,
        expected_output=expected,
        edac_ce=edac_ce,
        edac_ue=edac_ue,
    )
    output_matches: Optional[bool]
    if output is None:
        output_matches = None
    else:
        output_matches = output == expected
    locations: Dict[str, int] = {}
    if "edac_locations" in fields:
        for pair in fields["edac_locations"].split(","):
            key, _colon, count = pair.partition(":")
            if not key or not count.isdigit():
                raise ParseError(f"malformed edac_locations entry: {pair!r}")
            locations[key] = int(count)
    return ParsedRun(
        chip=header["chip"],
        benchmark=header["benchmark"],
        core=int(header["core"]),
        voltage_mv=int(header["voltage"]),
        freq_mhz=int(header["freq"]),
        campaign_index=int(header["campaign"]),
        run_index=int(header["run"]),
        effects=effects,
        exit_code=exit_code,
        output_matches=output_matches,
        edac_ce=edac_ce,
        edac_ue=edac_ue,
        watchdog_action=fields.get("watchdog", "none"),
        edac_locations=locations,
    )


def parse_log(text: str) -> List[ParsedRun]:
    """Parse a whole campaign log into classified runs."""
    blocks: List[List[str]] = []
    current: List[str] = []
    for line in text.splitlines():
        if line.startswith(RUN_HEADER):
            if current:
                blocks.append(current)
            current = [line]
        elif current:
            current.append(line)
        elif line.strip():
            raise ParseError(f"content before first run header: {line!r}")
    if current:
        blocks.append(current)
    runs = [_parse_block(block) for block in blocks]
    telemetry.inc_counter(telemetry.M_PARSER_RUNS, amount=len(runs))
    _LOG.debug("parsed campaign log", runs=len(runs))
    return runs
