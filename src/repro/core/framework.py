"""The automated characterization framework (Figure 2).

Three phases, as in the paper:

1. **Initialization**: the user declares benchmarks and the
   characterization setups (voltage schedule, frequency, cores).
2. **Execution**: for every setup, the framework programs the machine
   through SLIMpro, pins the benchmark to the core under test with
   every other PMD parked at 300 MHz (the "reliable cores setup"),
   runs it, *restores nominal voltage to store the log files safely*,
   and lets the watchdog recover the board whenever a run hangs it.
3. **Parsing**: raw logs are parsed into classified runs, severity
   tables and region decompositions, exported as CSV.

The framework is deliberately restricted to the surfaces a real
harness has: SLIMpro calls, program launches, the serial console and
the watchdog's buttons.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..effects import EffectType
from ..errors import CampaignError, ConfigurationError
from ..units import (
    FREQ_MAX_MHZ,
    PMD_NOMINAL_MV,
    validate_frequency_mhz,
    voltage_sweep,
)
from ..workloads.benchmark import Benchmark, Program
from ..hardware import MachineState
from ..machines import Machine, machine_to_spec
from .campaign import CampaignResult, CharacterizationResult
from .kernel import CampaignKernel
from .parser import format_run_block, parse_log
from .runs import CharacterizationSetup, RunRecord
from .watchdog import WatchdogAction, WatchdogMonitor


@dataclass(frozen=True)
class FrameworkConfig:
    """User-declared configuration of a characterization (phase 1).

    The defaults mirror the paper: 10 runs per voltage level, 10
    campaign repetitions, 5 mV descending schedule.  ``start_mv`` of
    ``None`` starts at nominal; ``stop_mv`` of ``None`` sweeps until
    ``stop_after_crash_levels`` consecutive all-crash levels, which is
    how the study detects the "cannot operate" floor without a
    predeclared stop.
    """

    start_mv: Optional[int] = None
    stop_mv: Optional[int] = None
    freq_mhz: int = FREQ_MAX_MHZ
    runs_per_level: int = 10
    campaigns: int = 10
    stop_after_crash_levels: int = 2
    run_timeout_s: float = 3600.0

    def __post_init__(self) -> None:
        validate_frequency_mhz(self.freq_mhz)
        if self.runs_per_level <= 0:
            raise ConfigurationError("runs_per_level must be positive")
        if self.campaigns <= 0:
            raise ConfigurationError("campaigns must be positive")
        if self.stop_after_crash_levels <= 0:
            raise ConfigurationError("stop_after_crash_levels must be positive")


class CharacterizationFramework:
    """Drives one machine through undervolting campaigns."""

    def __init__(
        self,
        machine: Machine,
        config: FrameworkConfig = FrameworkConfig(),
        watchdog: Optional[WatchdogMonitor] = None,
        use_kernel: bool = True,
    ) -> None:
        self.machine = machine
        self.config = config
        self.watchdog = watchdog or WatchdogMonitor(machine)
        #: Prefer the vectorized batch kernel (:mod:`repro.core.kernel`)
        #: when the machine's components are table-compilable; the
        #: scalar path remains the fallback (and the reference
        #: semantics) either way.
        self.use_kernel = bool(use_kernel)
        #: Which path the most recent :meth:`run_campaign` took:
        #: ``"batch"``, ``"scalar"``, or None before any campaign.
        self.last_campaign_path: Optional[str] = None
        #: Raw log text of every campaign, keyed by
        #: (benchmark, core, freq, campaign_index).
        self.raw_logs: Dict[Tuple[str, int, int, int], str] = {}
        #: Parsed-run statistics per raw log, keyed by the raw-log key
        #: and fingerprinted against the text, so diagnostics never
        #: re-parse a log they have already seen:
        #: key -> (fingerprint, n_runs, n_abnormal).
        self._parsed_stats: Dict[
            Tuple[str, int, int, int], Tuple[Tuple[int, int], int, int]
        ] = {}
        #: Execution metadata of the last engine-backed
        #: :meth:`characterize_many` (None until one has run).
        self.last_engine_report = None
        #: Batch kernels compiled this characterization, keyed by
        #: (benchmark, core, freq) -> (surface token, kernel); see
        #: :meth:`_compile_kernel`.
        self._kernel_cache: Dict[
            Tuple[str, int, int], Tuple[str, CampaignKernel]
        ] = {}

    # -- phase 2: execution -----------------------------------------------

    def _prepare_machine(self, core: int, freq_mhz: int, voltage_mv: int) -> None:
        """Reliable-cores setup + V/F programming for one run."""
        if self.machine.state is not MachineState.RUNNING:
            self.watchdog.ensure_alive()
        self.machine.clocks.set_pmd_frequency_mhz(core // 2, freq_mhz)
        self.machine.clocks.park_all_except([core])
        self.machine.slimpro.set_pmd_voltage_mv(voltage_mv)

    def _restore_safe_state(self) -> None:
        """Back to nominal before logs are persisted (Section 2.2.1)."""
        if self.machine.state is MachineState.RUNNING:
            self.machine.slimpro.restore_nominal_voltages()

    def run_campaign(
        self,
        workload: object,
        core: int,
        campaign_index: int = 1,
    ) -> CampaignResult:
        """Execute one campaign: the full voltage schedule once.

        Returns the parsed :class:`CampaignResult`; the raw log text is
        kept in :attr:`raw_logs`.

        When the machine's components are table-compilable (and
        :attr:`use_kernel` is set) the campaign executes on the batch
        kernel (:mod:`repro.core.kernel`) -- bit-identical records and
        raw logs, an order of magnitude faster; otherwise it falls back
        to the scalar loop below.  :attr:`last_campaign_path` and the
        ``repro_kernel_campaigns_total`` counter record which path ran.
        """
        program = self._as_program(workload)
        cfg = self.config
        start = cfg.start_mv if cfg.start_mv is not None else PMD_NOMINAL_MV
        floor = cfg.stop_mv if cfg.stop_mv is not None else 700
        schedule = voltage_sweep(start, floor)

        log_parts: List[str] = []
        consecutive_crash_levels = 0
        with telemetry.span(
            "campaign",
            benchmark=program.name,
            core=core,
            campaign=campaign_index,
            freq_mhz=cfg.freq_mhz,
        ):
            kernel = self._compile_kernel(program, core) if self.use_kernel else None
            self.last_campaign_path = "batch" if kernel is not None else "scalar"
            telemetry.inc_counter(
                telemetry.M_KERNEL_CAMPAIGNS, path=self.last_campaign_path
            )
            if kernel is not None:
                log_text, result = kernel.execute(schedule, campaign_index)
                key = (program.name, core, cfg.freq_mhz, campaign_index)
                self.raw_logs[key] = log_text
                with telemetry.span("parse", campaign=campaign_index):
                    # The kernel already built the records; keep the
                    # parse-phase counter totals identical to the
                    # scalar path (one aggregated increment per effect
                    # class instead of one call per occurrence).
                    effect_totals: Dict[str, int] = {}
                    for record in result.records:
                        for effect in record.effects:
                            value = effect.value
                            effect_totals[value] = (
                                effect_totals.get(value, 0) + 1
                            )
                    for value, amount in effect_totals.items():
                        telemetry.inc_counter(
                            telemetry.M_EFFECTS, effect=value, amount=amount
                        )
                    telemetry.inc_counter(
                        telemetry.M_PARSER_RUNS, amount=len(result.records)
                    )
                self._record_parsed_stats(key, log_text, result.records)
                return result
            for voltage_mv in schedule:
                level_all_crashed = True
                with telemetry.span(
                    "voltage_step", voltage_mv=voltage_mv, runs=cfg.runs_per_level
                ):
                    for run_index in range(1, cfg.runs_per_level + 1):
                        block = self._execute_one(
                            program, core, voltage_mv, campaign_index, run_index
                        )
                        log_parts.append(block)
                        if "status=system_crash" not in block:
                            level_all_crashed = False
                if level_all_crashed:
                    consecutive_crash_levels += 1
                    if (cfg.stop_mv is None
                            and consecutive_crash_levels >= cfg.stop_after_crash_levels):
                        break
                else:
                    consecutive_crash_levels = 0

            log_text = "".join(log_parts)
            key = (program.name, core, cfg.freq_mhz, campaign_index)
            self.raw_logs[key] = log_text
            with telemetry.span("parse", campaign=campaign_index):
                result = self._parse_campaign(log_text, campaign_index)
            self._record_parsed_stats(key, log_text, result.records)
        return result

    def _compile_kernel(
        self, program: Program, core: int
    ) -> Optional[CampaignKernel]:
        """Try to compile the machine's fault surface for the batch
        kernel; ``None`` when the machine has no ``compile_batch_table``
        hook or a component of it requires the scalar path.

        Compiled kernels are cached across the campaigns of one
        characterization, keyed by setup coordinates and invalidated by
        the machine's ``batch_surface_token`` (a value snapshot of every
        component the table depends on), so attaching an injector or
        swapping an extension model between campaigns recompiles -- or
        falls back -- exactly as a fresh compile would.
        """
        compile_table = getattr(self.machine, "compile_batch_table", None)
        if compile_table is None:
            return None
        token_of = getattr(self.machine, "batch_surface_token", None)
        key = (program.name, core, self.config.freq_mhz)
        if token_of is not None:
            cached = self._kernel_cache.get(key)
            if cached is not None and cached[0] == token_of():
                return cached[1]
        table = compile_table(program, core, self.config.freq_mhz)
        if table is None:
            self._kernel_cache.pop(key, None)
            return None
        kernel = CampaignKernel(
            machine=self.machine,
            table=table,
            config=self.config,
            watchdog=self.watchdog,
            prepare=self._prepare_machine,
            restore=self._restore_safe_state,
        )
        if token_of is not None:
            self._kernel_cache[key] = (token_of(), kernel)
        return kernel

    def _execute_one(
        self,
        program: Program,
        core: int,
        voltage_mv: int,
        campaign_index: int,
        run_index: int,
    ) -> str:
        """One characterization run -> its raw log block."""
        cfg = self.config
        self._prepare_machine(core, cfg.freq_mhz, voltage_mv)
        outcome = self.machine.run_program(
            program, core, timeout_s=cfg.run_timeout_s
        )
        responsive = self.machine.is_responsive()
        action = WatchdogAction.NONE
        if not responsive:
            action = self.watchdog.ensure_alive()
        self._restore_safe_state()
        locations = {
            key: count for key, count in outcome.detail.items()
            if key.startswith(("ce_", "ue_"))
        }
        return format_run_block(
            chip=self.machine.chip.name,
            benchmark=program.name,
            core=core,
            voltage_mv=voltage_mv,
            freq_mhz=cfg.freq_mhz,
            campaign_index=campaign_index,
            run_index=run_index,
            exit_code=outcome.exit_code,
            output=outcome.output,
            expected_output=outcome.expected_output,
            edac_ce=outcome.edac_ce,
            edac_ue=outcome.edac_ue,
            responsive=responsive,
            watchdog_action=action.value,
            edac_locations=locations,
        )

    # -- phase 3: parsing ----------------------------------------------------

    def _parse_campaign(self, log_text: str, campaign_index: int) -> CampaignResult:
        parsed = parse_log(log_text)
        if not parsed:
            raise CampaignError("campaign produced no runs")
        records = tuple(
            RunRecord(
                chip=run.chip,
                benchmark=run.benchmark,
                setup=CharacterizationSetup(
                    voltage_mv=run.voltage_mv,
                    freq_mhz=run.freq_mhz,
                    core=run.core,
                ),
                campaign_index=run.campaign_index,
                run_index=run.run_index,
                effects=run.effects,
                exit_code=run.exit_code,
                output_matches=run.output_matches,
                edac_ce=run.edac_ce,
                edac_ue=run.edac_ue,
                watchdog_intervened=run.watchdog_action != "none",
                detail=dict(run.edac_locations),
            )
            for run in parsed
        )
        for record in records:
            for effect in record.effects:
                telemetry.inc_counter(telemetry.M_EFFECTS, effect=effect.value)
        first = parsed[0]
        return CampaignResult(
            chip=first.chip,
            benchmark=first.benchmark,
            core=first.core,
            freq_mhz=first.freq_mhz,
            campaign_index=campaign_index,
            records=records,
        )

    # -- orchestration ---------------------------------------------------------

    def characterize(self, workload: object, core: int) -> CharacterizationResult:
        """Run the configured number of campaign repetitions."""
        campaigns = tuple(
            self.run_campaign(workload, core, campaign_index=i)
            for i in range(1, self.config.campaigns + 1)
        )
        return CharacterizationResult(campaigns=campaigns)

    def characterize_many(
        self,
        workloads: Sequence[object],
        cores: Sequence[int],
        jobs: int = 1,
        backend: str = "auto",
        progress=None,
        chunk_size: Optional[int] = None,
        store=None,
        resume: bool = False,
    ) -> Dict[Tuple[str, int], CharacterizationResult]:
        """Full grid: every workload on every core (Figure 4's sweep).

        The grid runs on the :class:`~repro.parallel.ParallelCampaignEngine`:
        every (workload, core, campaign) task executes on a fresh
        machine rebuilt from this machine's spec, with a seed derived
        from this machine's seed and the task's coordinates, so the
        result is **bit-identical for any ``jobs``** -- ``jobs=1`` runs
        the same tasks serially in process; ``jobs>1`` fans them out
        over a worker pool.

        ``store`` journals the grid into a campaign store directory
        (:mod:`repro.store`) as tasks complete; ``resume=True`` replays
        the journaled prefix and executes only the remainder, ending in
        the same results as an uninterrupted run.

        Extension models (droop, aging, adaptive clocking, rollback,
        injectors) ride along: they round-trip through the machine's
        spec (see :mod:`repro.machines`).  Only machines carrying
        *unregistered* third-party component models raise
        :class:`~repro.errors.ConfigurationError`.
        """
        from ..parallel.engine import ParallelCampaignEngine
        from ..parallel.progress import NULL_PROGRESS

        spec = machine_to_spec(self.machine)
        engine = ParallelCampaignEngine(
            spec,
            self.config,
            jobs=jobs,
            backend=backend,
            chunk_size=chunk_size,
            progress=progress if progress is not None else NULL_PROGRESS,
            use_kernel=self.use_kernel,
        )
        report = engine.run(workloads, cores, store=store, resume=resume)
        self.raw_logs.update(report.raw_logs)
        for (name, core), result in report.results.items():
            for campaign in result.campaigns:
                key = (name, core, self.config.freq_mhz, campaign.campaign_index)
                self._record_parsed_stats(
                    key, report.raw_logs[key], campaign.records
                )
        self.last_engine_report = report
        return report.results

    # -- misc -----------------------------------------------------------------------

    @staticmethod
    def _as_program(workload: object) -> Program:
        if isinstance(workload, Program):
            return workload
        if isinstance(workload, Benchmark):
            return workload.programs()[0]
        raise ConfigurationError(
            f"expected a Program or Benchmark, got {type(workload).__name__}"
        )

    @staticmethod
    def _log_fingerprint(text: str) -> Tuple[int, int]:
        """Cheap identity of a raw log (length + CRC-32 of the text).

        Deliberately *not* the builtin ``hash``: that one is salted by
        ``PYTHONHASHSEED``, so its fingerprints are process-local and
        would spuriously mismatch across worker restarts or resumed
        sessions.
        """
        return (len(text), zlib.crc32(text.encode("utf-8")))

    def _record_parsed_stats(
        self,
        key: Tuple[str, int, int, int],
        text: str,
        records: Sequence[object],
    ) -> None:
        """Cache run counts for :meth:`abnormal_run_fraction`."""
        normal = frozenset({EffectType.NO})
        abnormal = sum(
            1 for record in records if record.effects != normal
        )
        self._parsed_stats[key] = (
            self._log_fingerprint(text), len(records), abnormal
        )

    def abnormal_run_fraction(self) -> float:
        """Fraction of logged runs with any abnormal effect (diagnostics).

        Parsed-run statistics are cached per raw log (and validated
        against the log text), so repeated diagnostics calls never
        re-parse the raw text; a new campaign only parses its own log.
        """
        total = abnormal = 0
        for key, text in self.raw_logs.items():
            cached = self._parsed_stats.get(key)
            if cached is None or cached[0] != self._log_fingerprint(text):
                parsed = parse_log(text)
                count = sum(
                    1 for run in parsed
                    if run.effects != frozenset({EffectType.NO})
                )
                cached = (self._log_fingerprint(text), len(parsed), count)
                self._parsed_stats[key] = cached
            total += cached[1]
            abnormal += cached[2]
        return abnormal / total if total else 0.0
