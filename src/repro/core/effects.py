"""Run classification: from observables to Table-3 effect classes.

The machine reports raw observables (exit code, output digest, EDAC
deltas, responsiveness); this module applies the paper's classification
rules.  A single run can manifest several effects at once
(Section 3.4.1: "each characterization run can manifest multiple
effects; for instance, in a run both SDC and CE can be observed").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional

from ..effects import EffectType, normalize_effects

#: Shared singletons for the two single-effect outcomes every campaign
#: produces in bulk; classification is allocation-free for them.
_SC_RUN = frozenset({EffectType.SC})
_NO_RUN = frozenset({EffectType.NO})


def classify_run(
    responsive: bool,
    exit_code: Optional[int],
    output: Optional[str],
    expected_output: str,
    edac_ce: int = 0,
    edac_ue: int = 0,
) -> FrozenSet[EffectType]:
    """Classify one run from its observables.

    * machine unresponsive / run never finished -> **SC** (terminal: a
      hung machine yields no further observables);
    * non-zero exit code -> **AC**;
    * output digest mismatch on a completed run -> **SDC**;
    * EDAC corrected / uncorrected deltas -> **CE** / **UE** (these can
      accompany AC and SDC);
    * none of the above -> **NO**.
    """
    if not responsive or exit_code is None:
        return _SC_RUN
    if (
        exit_code == 0
        and edac_ce <= 0
        and edac_ue <= 0
        and output == expected_output
    ):
        return _NO_RUN
    effects = set()
    if edac_ce > 0:
        effects.add(EffectType.CE)
    if edac_ue > 0:
        effects.add(EffectType.UE)
    if exit_code != 0:
        effects.add(EffectType.AC)
    elif output != expected_output:
        effects.add(EffectType.SDC)
    return normalize_effects(effects)


def effect_counts(
    runs: Iterable[FrozenSet[EffectType]],
) -> Dict[EffectType, int]:
    """Aggregate per-effect occurrence counts over runs.

    Counts *runs in which the effect appeared*, not event multiplicity
    -- matching the severity function's definition ("the actual number
    of uncorrected errors during each run is not taken into
    consideration", Section 3.4.1).
    """
    counts: Dict[EffectType, int] = {effect: 0 for effect in EffectType}
    for effects in runs:
        for effect in effects:
            counts[effect] += 1
    return counts
