"""The paper's primary contribution: the characterization framework.

* :mod:`repro.core.effects` -- Table-3 effect classes and per-run
  classification rules.
* :mod:`repro.core.severity` -- the severity function (contribution 2,
  Section 3.4.1) with the Table-4 weights.
* :mod:`repro.core.runs` / :mod:`repro.core.campaign` -- run and
  campaign records.
* :mod:`repro.core.watchdog` -- the Raspberry-Pi-style watchdog monitor
  that recovers the machine after system crashes.
* :mod:`repro.core.framework` -- the three-phase automation of
  Figure 2: initialization, execution, parsing.
* :mod:`repro.core.parser` -- log parsing into classified results.
* :mod:`repro.core.regions` -- safe/unsafe/crash regions and Vmin.
* :mod:`repro.core.results` -- CSV persistence of everything above.
"""

from ..effects import EFFECT_DESCRIPTIONS, EFFECT_ORDER, EffectType
from .effects import classify_run, effect_counts
from .severity import (
    DEFAULT_WEIGHTS,
    SeverityWeights,
    deepest_voltage_within,
    severity_value,
    severity_of_runs,
)
from .runs import CharacterizationSetup, RunRecord
from .campaign import CampaignResult, CharacterizationResult
from .watchdog import WatchdogMonitor
from .framework import CharacterizationFramework, FrameworkConfig
from .parser import ParsedRun, parse_log
from .regions import OperatingRegions, Region, regions_from_counts
from .results import ResultStore

__all__ = [
    "EFFECT_DESCRIPTIONS",
    "EFFECT_ORDER",
    "EffectType",
    "classify_run",
    "effect_counts",
    "DEFAULT_WEIGHTS",
    "SeverityWeights",
    "deepest_voltage_within",
    "severity_value",
    "severity_of_runs",
    "CharacterizationSetup",
    "RunRecord",
    "CampaignResult",
    "CharacterizationResult",
    "WatchdogMonitor",
    "CharacterizationFramework",
    "FrameworkConfig",
    "ParsedRun",
    "parse_log",
    "OperatingRegions",
    "Region",
    "regions_from_counts",
    "ResultStore",
]
