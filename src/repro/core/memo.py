"""Memoization helpers for frozen dataclasses.

``functools.cached_property`` stores its value with ``instance.attr =
value``, which a frozen dataclass's ``__setattr__`` rejects.
:class:`frozen_cached_property` is the frozen-safe equivalent: it
writes the computed value through ``object.__setattr__``, which is the
documented escape hatch frozen dataclasses themselves use in
``__init__``.

The cache lives in the instance ``__dict__`` under a private name, so
it never participates in the dataclass's ``__eq__``/``__hash__``/
``__repr__`` (those only consider declared fields) and it survives
pickling harmlessly (the value is re-derivable from the fields).
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Optional, Type, TypeVar

T = TypeVar("T")

_UNSET = object()


class frozen_cached_property(Generic[T]):
    """``cached_property`` that works on frozen dataclasses.

    The wrapped function must be a pure function of the instance's
    (immutable) fields -- the value is computed once per instance and
    never invalidated.
    """

    def __init__(self, func: Callable[[Any], T]) -> None:
        self.func = func
        self.__doc__ = func.__doc__
        self._name = f"_cached_{func.__name__}"

    def __set_name__(self, owner: type, name: str) -> None:
        self._name = f"_cached_{name}"

    def __get__(self, obj: Any, objtype: Optional[Type] = None) -> T:
        if obj is None:
            return self  # type: ignore[return-value]
        value = obj.__dict__.get(self._name, _UNSET)
        if value is _UNSET:
            value = self.func(obj)
            object.__setattr__(obj, self._name, value)
        return value
