"""Campaign aggregates.

Paper terminology (Section 2.2): a *characterization run* is one
execution of a benchmark under one setup; the set of all runs of the
same benchmark over different setups is a *campaign*.  The study runs
every campaign ten times to capture non-determinism; Figures 3/4 plot
the highest Vmin / highest crash voltage over those repetitions and
Figure 5 the severity aggregated across them.

Both aggregate classes are frozen, so every derived view (per-voltage
index, pooled counts, regions) is computed once per instance with
:class:`~repro.core.memo.frozen_cached_property` and shared by all
subsequent queries.  A ten-campaign characterization over a 50-level
sweep used to rescan every record once per voltage level
(O(records x voltages)); the cached single-pass index makes every
aggregate O(records) once and O(voltages) afterwards, which is what
lets the parallel engine hammer these paths at fleet scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Tuple

from ..effects import EffectType
from ..errors import CampaignError
from .memo import frozen_cached_property
from .regions import OperatingRegions, merge_counts, regions_from_counts
from .runs import RunRecord
from .severity import DEFAULT_WEIGHTS, SeverityWeights, severity_value


class _VoltageIndex(NamedTuple):
    """Single-pass per-voltage index of a record set (internal).

    The dict values are owned by the index and must never be handed to
    callers directly -- the public accessors return copies.
    """

    #: voltage -> effect -> number of runs the effect appeared in.
    counts: Dict[int, Dict[EffectType, int]]
    #: voltage -> number of runs executed at that level.
    run_counts: Dict[int, int]
    #: voltage -> the records themselves, in execution order.
    records: Dict[int, Tuple[RunRecord, ...]]


def _index_records(records: Tuple[RunRecord, ...]) -> _VoltageIndex:
    """Build the per-voltage index in one pass over the records."""
    counts: Dict[int, Dict[EffectType, int]] = {}
    run_counts: Dict[int, int] = {}
    grouped: Dict[int, List[RunRecord]] = {}
    for record in records:
        voltage = record.setup.voltage_mv
        slot = counts.get(voltage)
        if slot is None:
            slot = counts[voltage] = {effect: 0 for effect in EffectType}
            run_counts[voltage] = 0
            grouped[voltage] = []
        run_counts[voltage] += 1
        grouped[voltage].append(record)
        for effect in record.effects:
            slot[effect] += 1
    return _VoltageIndex(
        counts=counts,
        run_counts=run_counts,
        records={v: tuple(recs) for v, recs in grouped.items()},
    )


@dataclass(frozen=True)
class CampaignResult:
    """One campaign: a benchmark swept over voltages on one core."""

    chip: str
    benchmark: str
    core: int
    freq_mhz: int
    campaign_index: int
    records: Tuple[RunRecord, ...]

    def __post_init__(self) -> None:
        if not self.records:
            raise CampaignError("a campaign needs at least one run record")

    # -- aggregation ------------------------------------------------------

    @frozen_cached_property
    def _index(self) -> _VoltageIndex:
        return _index_records(self.records)

    @frozen_cached_property
    def _regions(self) -> OperatingRegions:
        return regions_from_counts(self._index.counts)

    def voltages(self) -> Tuple[int, ...]:
        """Tested voltage levels, descending."""
        return tuple(sorted(self._index.run_counts, reverse=True))

    def runs_at(self, voltage_mv: int) -> List[RunRecord]:
        return list(self._index.records.get(voltage_mv, ()))

    def counts_by_voltage(self) -> Dict[int, Dict[EffectType, int]]:
        """Per-voltage effect counts (runs in which each effect appeared)."""
        return {voltage: dict(slot) for voltage, slot in self._index.counts.items()}

    def run_counts_by_voltage(self) -> Dict[int, int]:
        """Number of runs executed at each tested voltage level."""
        return dict(self._index.run_counts)

    def severity_by_voltage(
        self, weights: SeverityWeights = DEFAULT_WEIGHTS
    ) -> Dict[int, float]:
        """Severity at each tested voltage level."""
        index = self._index
        return {
            voltage: severity_value(counts, index.run_counts[voltage], weights)
            for voltage, counts in index.counts.items()
        }

    def regions(self) -> OperatingRegions:
        """This campaign's region decomposition."""
        return self._regions

    @property
    def vmin_mv(self) -> int:
        """This campaign's safe Vmin."""
        return self._regions.vmin_mv

    @property
    def crash_mv(self) -> Optional[int]:
        return self._regions.crash_mv


@dataclass(frozen=True)
class CharacterizationResult:
    """All repetitions of one campaign (the paper runs ten).

    This is the unit Figures 3-5 are drawn from.
    """

    campaigns: Tuple[CampaignResult, ...]

    @classmethod
    def from_store(
        cls, store: object, benchmark: str, core: int
    ) -> "CharacterizationResult":
        """Reconstruct one grid cell from a journaled campaign store.

        ``store`` is a :class:`repro.store.CampaignStore` or a path to
        one.  Imported lazily: ``repro.store`` sits above the core layer
        and importing it here at module level would create a cycle.
        """
        from ..store import CampaignStore

        if not isinstance(store, CampaignStore):
            store = CampaignStore.open(store)  # type: ignore[arg-type]
        return store.result_for(benchmark, core)

    def __post_init__(self) -> None:
        if not self.campaigns:
            raise CampaignError("need at least one campaign")
        first = self.campaigns[0]
        for campaign in self.campaigns[1:]:
            if (campaign.chip, campaign.benchmark, campaign.core,
                    campaign.freq_mhz) != (first.chip, first.benchmark,
                                           first.core, first.freq_mhz):
                raise CampaignError(
                    "all campaigns of a characterization must share "
                    "chip/benchmark/core/frequency"
                )

    @property
    def chip(self) -> str:
        return self.campaigns[0].chip

    @property
    def benchmark(self) -> str:
        return self.campaigns[0].benchmark

    @property
    def core(self) -> int:
        return self.campaigns[0].core

    @property
    def freq_mhz(self) -> int:
        return self.campaigns[0].freq_mhz

    # -- the published aggregates ---------------------------------------------

    @property
    def highest_vmin_mv(self) -> int:
        """Highest safe Vmin across campaigns (Figures 3/4 bars)."""
        return max(c.vmin_mv for c in self.campaigns)

    @property
    def mean_vmin_mv(self) -> float:
        """Average Vmin across campaigns (Figure 4 green line)."""
        return sum(c.vmin_mv for c in self.campaigns) / len(self.campaigns)

    @property
    def highest_crash_mv(self) -> Optional[int]:
        """Highest crash voltage across campaigns (Figure 4 black tops)."""
        crashes = [c.crash_mv for c in self.campaigns if c.crash_mv is not None]
        return max(crashes) if crashes else None

    @property
    def mean_crash_mv(self) -> Optional[float]:
        """Average crash voltage across campaigns (Figure 4 red line)."""
        crashes = [c.crash_mv for c in self.campaigns if c.crash_mv is not None]
        return sum(crashes) / len(crashes) if crashes else None

    @frozen_cached_property
    def _pooled_counts(self) -> Dict[int, Dict[EffectType, int]]:
        return merge_counts(c._index.counts for c in self.campaigns)

    @frozen_cached_property
    def _pooled_run_counts(self) -> Dict[int, int]:
        pooled: Dict[int, int] = {}
        for campaign in self.campaigns:
            for voltage, n_runs in campaign._index.run_counts.items():
                pooled[voltage] = pooled.get(voltage, 0) + n_runs
        return pooled

    @frozen_cached_property
    def _pooled_regions(self) -> OperatingRegions:
        return regions_from_counts(self._pooled_counts)

    def pooled_counts(self) -> Dict[int, Dict[EffectType, int]]:
        """Effect counts pooled over all campaigns, per voltage."""
        return {voltage: dict(slot) for voltage, slot in self._pooled_counts.items()}

    def pooled_regions(self) -> OperatingRegions:
        """Regions from all campaigns pooled -- equals (highest Vmin,
        highest crash) by construction."""
        return self._pooled_regions

    def severity_by_voltage(
        self, weights: SeverityWeights = DEFAULT_WEIGHTS
    ) -> Dict[int, float]:
        """Severity per voltage over *all* runs of all campaigns --
        the Figure-5 cell values (mean severity across repetitions)."""
        runs_per_level = self._pooled_run_counts
        return {
            voltage: severity_value(counts, runs_per_level[voltage], weights)
            for voltage, counts in self._pooled_counts.items()
        }

    def all_records(self) -> List[RunRecord]:
        """Every run record of every campaign."""
        return [record for campaign in self.campaigns for record in campaign.records]
