"""Campaign aggregates.

Paper terminology (Section 2.2): a *characterization run* is one
execution of a benchmark under one setup; the set of all runs of the
same benchmark over different setups is a *campaign*.  The study runs
every campaign ten times to capture non-determinism; Figures 3/4 plot
the highest Vmin / highest crash voltage over those repetitions and
Figure 5 the severity aggregated across them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..effects import EffectType
from ..errors import CampaignError
from .regions import OperatingRegions, merge_counts, regions_from_counts
from .runs import RunRecord
from .severity import DEFAULT_WEIGHTS, SeverityWeights, severity_value


@dataclass(frozen=True)
class CampaignResult:
    """One campaign: a benchmark swept over voltages on one core."""

    chip: str
    benchmark: str
    core: int
    freq_mhz: int
    campaign_index: int
    records: Tuple[RunRecord, ...]

    def __post_init__(self) -> None:
        if not self.records:
            raise CampaignError("a campaign needs at least one run record")

    # -- aggregation ------------------------------------------------------

    def voltages(self) -> Tuple[int, ...]:
        """Tested voltage levels, descending."""
        return tuple(sorted({r.setup.voltage_mv for r in self.records}, reverse=True))

    def runs_at(self, voltage_mv: int) -> List[RunRecord]:
        return [r for r in self.records if r.setup.voltage_mv == voltage_mv]

    def counts_by_voltage(self) -> Dict[int, Dict[EffectType, int]]:
        """Per-voltage effect counts (runs in which each effect appeared)."""
        out: Dict[int, Dict[EffectType, int]] = {}
        for record in self.records:
            slot = out.setdefault(
                record.setup.voltage_mv, {effect: 0 for effect in EffectType}
            )
            for effect in record.effects:
                slot[effect] += 1
        return out

    def severity_by_voltage(
        self, weights: SeverityWeights = DEFAULT_WEIGHTS
    ) -> Dict[int, float]:
        """Severity at each tested voltage level."""
        out: Dict[int, float] = {}
        for voltage, counts in self.counts_by_voltage().items():
            n_runs = len(self.runs_at(voltage))
            out[voltage] = severity_value(counts, n_runs, weights)
        return out

    def regions(self) -> OperatingRegions:
        """This campaign's region decomposition."""
        return regions_from_counts(self.counts_by_voltage())

    @property
    def vmin_mv(self) -> int:
        """This campaign's safe Vmin."""
        return self.regions().vmin_mv

    @property
    def crash_mv(self) -> Optional[int]:
        return self.regions().crash_mv


@dataclass(frozen=True)
class CharacterizationResult:
    """All repetitions of one campaign (the paper runs ten).

    This is the unit Figures 3-5 are drawn from.
    """

    campaigns: Tuple[CampaignResult, ...]

    def __post_init__(self) -> None:
        if not self.campaigns:
            raise CampaignError("need at least one campaign")
        first = self.campaigns[0]
        for campaign in self.campaigns[1:]:
            if (campaign.chip, campaign.benchmark, campaign.core,
                    campaign.freq_mhz) != (first.chip, first.benchmark,
                                           first.core, first.freq_mhz):
                raise CampaignError(
                    "all campaigns of a characterization must share "
                    "chip/benchmark/core/frequency"
                )

    @property
    def chip(self) -> str:
        return self.campaigns[0].chip

    @property
    def benchmark(self) -> str:
        return self.campaigns[0].benchmark

    @property
    def core(self) -> int:
        return self.campaigns[0].core

    @property
    def freq_mhz(self) -> int:
        return self.campaigns[0].freq_mhz

    # -- the published aggregates ---------------------------------------------

    @property
    def highest_vmin_mv(self) -> int:
        """Highest safe Vmin across campaigns (Figures 3/4 bars)."""
        return max(c.vmin_mv for c in self.campaigns)

    @property
    def mean_vmin_mv(self) -> float:
        """Average Vmin across campaigns (Figure 4 green line)."""
        return sum(c.vmin_mv for c in self.campaigns) / len(self.campaigns)

    @property
    def highest_crash_mv(self) -> Optional[int]:
        """Highest crash voltage across campaigns (Figure 4 black tops)."""
        crashes = [c.crash_mv for c in self.campaigns if c.crash_mv is not None]
        return max(crashes) if crashes else None

    @property
    def mean_crash_mv(self) -> Optional[float]:
        """Average crash voltage across campaigns (Figure 4 red line)."""
        crashes = [c.crash_mv for c in self.campaigns if c.crash_mv is not None]
        return sum(crashes) / len(crashes) if crashes else None

    def pooled_counts(self) -> Dict[int, Dict[EffectType, int]]:
        """Effect counts pooled over all campaigns, per voltage."""
        return merge_counts(c.counts_by_voltage() for c in self.campaigns)

    def pooled_regions(self) -> OperatingRegions:
        """Regions from all campaigns pooled -- equals (highest Vmin,
        highest crash) by construction."""
        return regions_from_counts(self.pooled_counts())

    def severity_by_voltage(
        self, weights: SeverityWeights = DEFAULT_WEIGHTS
    ) -> Dict[int, float]:
        """Severity per voltage over *all* runs of all campaigns --
        the Figure-5 cell values (mean severity across repetitions)."""
        pooled = self.pooled_counts()
        runs_per_level: Dict[int, int] = {}
        for campaign in self.campaigns:
            for voltage in campaign.voltages():
                runs_per_level[voltage] = runs_per_level.get(voltage, 0) + len(
                    campaign.runs_at(voltage)
                )
        return {
            voltage: severity_value(counts, runs_per_level[voltage], weights)
            for voltage, counts in pooled.items()
        }

    def all_records(self) -> List[RunRecord]:
        """Every run record of every campaign."""
        return [record for campaign in self.campaigns for record in campaign.records]
