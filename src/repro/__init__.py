"""repro: a full reproduction of *"Harnessing Voltage Margins for
Energy Efficiency in Multicore CPUs"* (Papadimitriou et al., MICRO-50,
2017) on a behavioural X-Gene 2 simulator.

The package mirrors the paper's structure:

* :mod:`repro.hardware` -- the simulated APM X-Gene 2 micro-server
  (8 ARMv8 cores in 4 PMDs on a shared voltage plane, SLIMpro/PMpro
  management, parity/ECC caches, EDAC, PMU, serial console).
* :mod:`repro.faults` -- voltage-dependent failure models and real
  ECC codecs.
* :mod:`repro.workloads` -- the synthetic SPEC CPU2006 suite and the
  Section-3.4 self-tests.
* :mod:`repro.core` -- **contribution 1 & 2**: the automated
  characterization framework (Figure 2) and the severity function.
* :mod:`repro.machines` -- declarative machine construction: the
  ``Machine`` protocol, the component-codec registry and the
  JSON/pickle-round-trippable ``MachineSpec``.
* :mod:`repro.parallel` -- deterministic campaign fan-out: whole
  characterization grids over a worker pool, bit-identical to serial.
* :mod:`repro.telemetry` -- structured traces, metrics and logging
  over running campaigns; observes without perturbing determinism.
* :mod:`repro.prediction` -- **contribution 3**: Vmin/severity
  prediction from performance counters (Figure 6).
* :mod:`repro.energy` -- **contribution 4**: energy-performance
  trade-offs (Figure 9) and the headline savings.
* :mod:`repro.scheduling` -- severity-aware scheduling, the online
  voltage governor, DVFS baseline and Section-4.4 mitigations.
* :mod:`repro.analysis` -- regeneration of every table and figure.

Quick start::

    from repro import CharacterizationFramework, MachineSpec, build_machine
    from repro.workloads import get_benchmark

    machine = build_machine(MachineSpec(chip="TTT", seed=2017))
    framework = CharacterizationFramework(machine)
    result = framework.characterize(get_benchmark("bwaves"), core=0)
    print(result.highest_vmin_mv, result.severity_by_voltage())
"""

from ._version import __version__
from .effects import EffectType
from .errors import ReproError
from .config import PAPER_STUDY, QUICK_STUDY, StudyConfig
from .core import (
    CharacterizationFramework,
    CharacterizationResult,
    FrameworkConfig,
    SeverityWeights,
    WatchdogMonitor,
    severity_value,
)
# The package root is the one sanctioned place consumers may still
# reach the reference machine class; new code should build machines
# through repro.machines.MachineSpec instead.
# reprolint: disable=RPR003 -- public-API backwards-compat re-export
from .hardware import XGene2Chip, XGene2Machine
from .machines import (
    Machine,
    MachineSpec,
    build_machine,
    load_machine_spec,
    machine_to_spec,
    register_component,
    save_machine_spec,
)
from .parallel import ParallelCampaignEngine
from .prediction import PredictionPipeline, PredictionReport
from .energy import figure9_ladder, headline_savings
from .scheduling import SeverityAwareScheduler, VoltageGovernor

__all__ = [
    "__version__",
    "EffectType",
    "ReproError",
    "PAPER_STUDY",
    "QUICK_STUDY",
    "StudyConfig",
    "CharacterizationFramework",
    "CharacterizationResult",
    "FrameworkConfig",
    "SeverityWeights",
    "WatchdogMonitor",
    "severity_value",
    "XGene2Chip",
    "XGene2Machine",
    "Machine",
    "MachineSpec",
    "build_machine",
    "load_machine_spec",
    "machine_to_spec",
    "register_component",
    "save_machine_spec",
    "ParallelCampaignEngine",
    "PredictionPipeline",
    "PredictionReport",
    "figure9_ladder",
    "headline_savings",
    "SeverityAwareScheduler",
    "VoltageGovernor",
]
