"""Structured logger routed through the telemetry session.

``get_logger(name)`` returns a :class:`StructuredLogger` whose
``debug``/``info``/``warning``/``error`` methods emit a zero-duration
``log.<level>`` trace event carrying the message and key-value fields,
and bump the ``repro_log_messages_total`` counter by level.  Without
an active telemetry session both are no-ops -- library code can log
unconditionally without configuring handlers, and stdout/stderr stay
silent unless the user opted in with ``--trace``/``--metrics``.

This replaces the ad-hoc :mod:`logging` usage the library used to
document: one structured path, no global logging configuration.
"""

from __future__ import annotations

from typing import Dict

from .context import event, inc_counter
from .metrics import M_LOG_MESSAGES
from .tracing import AttrValue

LOG_LEVELS = ("debug", "info", "warning", "error")


class StructuredLogger:
    """Named logger emitting trace events + a per-level counter."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def log(self, level: str, message: str, **fields: AttrValue) -> None:
        if level not in LOG_LEVELS:
            raise ValueError(f"unknown log level {level!r}; use one of {LOG_LEVELS}")
        inc_counter(M_LOG_MESSAGES, level=level)
        event(f"log.{level}", logger=self.name, message=message, **fields)

    def debug(self, message: str, **fields: AttrValue) -> None:
        self.log("debug", message, **fields)

    def info(self, message: str, **fields: AttrValue) -> None:
        self.log("info", message, **fields)

    def warning(self, message: str, **fields: AttrValue) -> None:
        self.log("warning", message, **fields)

    def error(self, message: str, **fields: AttrValue) -> None:
        self.log("error", message, **fields)


_LOGGERS: Dict[str, StructuredLogger] = {}


def get_logger(name: str) -> StructuredLogger:
    """Return the (cached) structured logger for ``name``."""
    logger = _LOGGERS.get(name)
    if logger is None:
        logger = StructuredLogger(name)
        _LOGGERS[name] = logger
    return logger


__all__ = ["LOG_LEVELS", "StructuredLogger", "get_logger"]
