"""Campaign status: journal progress + live metrics snapshot.

:func:`campaign_status` opens a campaign store read-only, tallies
completed tasks and per-effect run counts from the journal, and (when
given a metrics JSON snapshot written by ``--metrics``) derives an ETA
from the observed per-task latency histogram.  :func:`render_status`
formats the result for the ``repro status`` subcommand.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..effects import EFFECT_ORDER
from .metrics import METRICS_FORMAT, M_TASK_SECONDS


@dataclass(frozen=True)
class CampaignStatus:
    """Progress summary of one campaign store."""

    store_path: str
    chip: str
    workloads: Tuple[str, ...]
    cores: Tuple[int, ...]
    campaigns_per_cell: int
    tasks_total: int
    tasks_completed: int
    interventions: int
    #: (effect value, run count) pairs in severity order (Table 3).
    effect_tallies: Tuple[Tuple[str, int], ...]
    #: (benchmark, core, completed campaigns) per grid cell, grid order.
    cells: Tuple[Tuple[str, int, int], ...]
    #: Mean per-task seconds from a live metrics snapshot, if provided.
    mean_task_seconds: Optional[float] = None
    #: Whether a metrics snapshot was supplied at all -- distinguishes
    #: "no snapshot" (omit the ETA line) from "snapshot without task
    #: samples yet" (render "n/a").
    metrics_provided: bool = False

    @property
    def tasks_remaining(self) -> int:
        return self.tasks_total - self.tasks_completed

    @property
    def fraction(self) -> float:
        return self.tasks_completed / self.tasks_total if self.tasks_total else 1.0

    @property
    def complete(self) -> bool:
        return self.tasks_remaining == 0

    @property
    def eta_s(self) -> Optional[float]:
        """Estimated seconds to completion, when a task rate is known."""
        if self.mean_task_seconds is None:
            return None
        return self.mean_task_seconds * self.tasks_remaining


def _read_mean_task_seconds(path: Union[str, Path]) -> Optional[float]:
    """Mean task latency out of a ``repro-metrics/v1`` JSON snapshot."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("format") != METRICS_FORMAT:
        raise ValueError(
            f"{path}: not a {METRICS_FORMAT} snapshot "
            "(pass the JSON file written by --metrics)"
        )
    for metric in data.get("metrics", []):
        if metric.get("name") != M_TASK_SECONDS:
            continue
        for sample in metric.get("samples", []):
            # An empty or just-initialized histogram has count 0 (or no
            # sum at all); that is "no rate known yet", never an error.
            count = sample.get("count", 0)
            total = sample.get("sum")
            if count and total is not None:
                return float(total) / float(count)
    return None


def campaign_status(
    store: Union[str, Path],
    metrics_path: Optional[Union[str, Path]] = None,
) -> CampaignStatus:
    """Summarize a store directory (and optional metrics snapshot)."""
    # Imported lazily: repro.store imports repro.telemetry at module
    # level to instrument journal appends, so the top-level import
    # would be circular.
    from ..store import CampaignStore

    opened = CampaignStore.open(store)
    manifest = opened.manifest
    completed = opened.completed_keys()

    tallies: Dict[str, int] = {effect.value: 0 for effect in EFFECT_ORDER}
    interventions = 0
    per_cell: Dict[Tuple[str, int], int] = {
        (name, core): 0 for name in manifest.workloads for core in manifest.cores
    }
    for stored in opened.campaigns():
        interventions += stored.interventions
        per_cell[(stored.benchmark, stored.core)] += 1
        for record in stored.records:
            for effect in record.effects:
                tallies[effect.value] += 1

    chip = manifest.spec.chip
    chip_name = chip if isinstance(chip, str) else getattr(chip, "name", str(chip))

    mean_task_seconds = (
        _read_mean_task_seconds(metrics_path) if metrics_path is not None else None
    )
    return CampaignStatus(
        store_path=str(store),
        chip=str(chip_name),
        workloads=manifest.workloads,
        cores=manifest.cores,
        campaigns_per_cell=manifest.config.campaigns,
        tasks_total=len(manifest.expected_keys()),
        tasks_completed=len(completed),
        interventions=interventions,
        effect_tallies=tuple((effect.value, tallies[effect.value]) for effect in EFFECT_ORDER),
        cells=tuple(
            (name, core, per_cell[(name, core)])
            for name in manifest.workloads
            for core in manifest.cores
        ),
        mean_task_seconds=mean_task_seconds,
        metrics_provided=metrics_path is not None,
    )


@dataclass(frozen=True)
class ModelStatus:
    """Summary of the latest model artifact of one (target, core)."""

    target: str
    core: int
    version: int
    journal_offset: int
    n_samples: int
    servable: bool
    selected_features: Tuple[str, ...]
    #: Prequential model RMSE at save time, when evaluated batches exist.
    rmse: Optional[float] = None
    #: Prequential model/naive RMSE ratio (1.0 = no better than naive).
    drift: Optional[float] = None


def model_statuses(store: Union[str, Path]) -> Tuple[ModelStatus, ...]:
    """Latest ``repro-model/v1`` artifact per (target, core) series."""
    from ..store import CampaignStore

    opened = CampaignStore.open(store)
    statuses = []
    for artifact in opened.model_store().latest_artifacts():
        statuses.append(
            ModelStatus(
                target=artifact.target,
                core=artifact.core,
                version=artifact.version,
                journal_offset=artifact.journal_offset,
                n_samples=artifact.n_samples,
                servable=artifact.is_servable,
                selected_features=artifact.selected_features,
                rmse=artifact.metrics.get("prequential_rmse"),
                drift=artifact.metrics.get("drift"),
            )
        )
    return tuple(statuses)


def render_model_status(statuses: Tuple[ModelStatus, ...]) -> str:
    """Human-readable ``repro status --models`` section."""
    lines: List[str] = ["model artifacts:"]
    if not statuses:
        lines.append("  (none -- run `repro train STORE` to fit one)")
        return "\n".join(lines) + "\n"
    for status in statuses:
        rmse = f"{status.rmse:.3f}" if status.rmse is not None else "--"
        drift = f"{status.drift:.3f}" if status.drift is not None else "--"
        servable = "servable" if status.servable else "not servable yet"
        lines.append(
            f"  {status.target} c{status.core}: v{status.version} "
            f"@offset {status.journal_offset}, {status.n_samples} samples, "
            f"{servable}, prequential RMSE {rmse}, drift {drift}"
        )
        if status.selected_features:
            lines.append(
                "    features: " + ", ".join(status.selected_features)
            )
    return "\n".join(lines) + "\n"


def _format_eta(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f} h"
    if seconds >= 60:
        return f"{seconds / 60:.1f} min"
    return f"{seconds:.1f} s"


def render_status(status: CampaignStatus) -> str:
    """Human-readable report for ``repro status``."""
    lines: List[str] = []
    lines.append(f"store: {status.store_path} (chip {status.chip})")
    lines.append(
        f"progress: {status.tasks_completed}/{status.tasks_total} tasks "
        f"({status.fraction * 100:.1f} %)"
        + (", complete" if status.complete else f", {status.tasks_remaining} remaining")
    )
    if status.eta_s is not None and not status.complete:
        assert status.mean_task_seconds is not None
        lines.append(
            f"eta: {_format_eta(status.eta_s)} "
            f"at {status.mean_task_seconds:.3f} s/task"
        )
    elif status.metrics_provided and not status.complete:
        # A snapshot was supplied but holds no completed-task samples
        # (empty or just-initialized journal): the rate is unknowable,
        # which is an answer, not an error.
        lines.append("eta: n/a (no completed-task samples yet)")
    lines.append(f"watchdog interventions: {status.interventions}")
    lines.append("effect classes (runs):")
    for effect, count in status.effect_tallies:
        lines.append(f"  {effect:>4}: {count}")
    lines.append("grid cells (campaigns done of "
                 f"{status.campaigns_per_cell}):")
    for benchmark, core, done in status.cells:
        lines.append(f"  {benchmark} c{core}: {done}/{status.campaigns_per_cell}")
    return "\n".join(lines) + "\n"


# -- fleet status -----------------------------------------------------------


@dataclass(frozen=True)
class FleetShardStatus:
    """Progress + warm-index answers of one fleet shard."""

    name: str
    spec_digest: str
    chip: str
    tasks_total: int
    tasks_completed: int
    compacted: bool
    #: (benchmark, core, vmin_mv, crash_mv) per *completed* grid cell,
    #: in manifest grid order, served from the warm Vmin index.
    vmin_cells: Tuple[Tuple[str, int, int, Optional[int]], ...]

    @property
    def complete(self) -> bool:
        return self.tasks_completed >= self.tasks_total


@dataclass(frozen=True)
class FleetStatus:
    """Cross-shard progress summary of one fleet store."""

    fleet_path: str
    workloads: Tuple[str, ...]
    cores: Tuple[int, ...]
    campaigns_per_cell: int
    shards: Tuple[FleetShardStatus, ...]
    mean_task_seconds: Optional[float] = None
    metrics_provided: bool = False

    @property
    def tasks_total(self) -> int:
        return sum(shard.tasks_total for shard in self.shards)

    @property
    def tasks_completed(self) -> int:
        return sum(shard.tasks_completed for shard in self.shards)

    @property
    def tasks_remaining(self) -> int:
        return self.tasks_total - self.tasks_completed

    @property
    def fraction(self) -> float:
        return (
            self.tasks_completed / self.tasks_total if self.tasks_total else 1.0
        )

    @property
    def complete(self) -> bool:
        return self.tasks_remaining == 0

    @property
    def eta_s(self) -> Optional[float]:
        if self.mean_task_seconds is None:
            return None
        return self.mean_task_seconds * self.tasks_remaining


def fleet_status(
    fleet: Union[str, Path],
    metrics_path: Optional[Union[str, Path]] = None,
) -> FleetStatus:
    """Summarize a fleet store, serving Vmin from the warm indexes.

    Progress is re-derived from the shard journals on disk (the fleet
    manifest's watermarks may lag a concurrent appender); the per-cell
    Vmin answers come from each shard's incremental
    :class:`~repro.store.VminIndex` -- the contract that the index is
    answer-identical to a re-parse is what makes this safe.
    """
    # Lazy for the same reason as campaign_status: repro.store imports
    # repro.telemetry at module level.
    from ..store import CampaignStore, StoreIndexes, FleetStore

    opened = FleetStore.open(fleet)
    shards: List[FleetShardStatus] = []
    for entry in opened.manifest.shards:
        store = CampaignStore.open(opened.shard_path(entry))
        indexes = StoreIndexes(store)
        vmin = indexes.vmin
        chip = store.manifest.spec.chip
        chip_name = (
            chip if isinstance(chip, str) else getattr(chip, "name", str(chip))
        )
        shards.append(
            FleetShardStatus(
                name=entry.name,
                spec_digest=entry.spec_digest,
                chip=str(chip_name),
                tasks_total=entry.total,
                tasks_completed=len(store.completed_keys()),
                compacted=entry.compacted,
                vmin_cells=tuple(
                    (name, core, vmin.vmin_mv(name, core),
                     vmin.crash_mv(name, core))
                    for name, core in vmin.cells()
                ),
            )
        )
    mean_task_seconds = (
        _read_mean_task_seconds(metrics_path) if metrics_path is not None else None
    )
    return FleetStatus(
        fleet_path=str(fleet),
        workloads=opened.manifest.workloads,
        cores=opened.manifest.cores,
        campaigns_per_cell=opened.manifest.config.campaigns,
        shards=tuple(shards),
        mean_task_seconds=mean_task_seconds,
        metrics_provided=metrics_path is not None,
    )


def render_fleet_status(status: FleetStatus) -> str:
    """Human-readable report for ``repro fleet status``."""
    lines: List[str] = []
    lines.append(
        f"fleet: {status.fleet_path} ({len(status.shards)} shards)"
    )
    lines.append(
        f"progress: {status.tasks_completed}/{status.tasks_total} tasks "
        f"({status.fraction * 100:.1f} %)"
        + (", complete" if status.complete
           else f", {status.tasks_remaining} remaining")
    )
    if status.eta_s is not None and not status.complete:
        assert status.mean_task_seconds is not None
        lines.append(
            f"eta: {_format_eta(status.eta_s)} "
            f"at {status.mean_task_seconds:.3f} s/task"
        )
    elif status.metrics_provided and not status.complete:
        lines.append("eta: n/a (no completed-task samples yet)")
    for shard in status.shards:
        state = "complete" if shard.complete else "in progress"
        if shard.compacted:
            state += ", compacted"
        lines.append(
            f"  {shard.name} (chip {shard.chip}): "
            f"{shard.tasks_completed}/{shard.tasks_total} tasks, {state}"
        )
        for benchmark, core, vmin_mv, crash_mv in shard.vmin_cells:
            crash = "--" if crash_mv is None else f"{crash_mv} mV"
            lines.append(
                f"    {benchmark} c{core}: Vmin {vmin_mv} mV, "
                f"crash {crash}"
            )
    return "\n".join(lines) + "\n"


__all__ = [
    "CampaignStatus",
    "FleetShardStatus",
    "FleetStatus",
    "ModelStatus",
    "campaign_status",
    "fleet_status",
    "model_statuses",
    "render_fleet_status",
    "render_model_status",
    "render_status",
]
