"""The ``repro dash`` terminal dashboard.

A :class:`Dashboard` aggregates, for one campaign store or fleet
directory: task progress (re-derived from the journals, the same way
``repro status`` does), the metrics time-series journals written by
``--tsdb`` (read through warm :class:`~repro.telemetry.tsdb.TsdbCursor`
instances that persist across refreshes, so a ``--follow`` loop only
parses the bytes appended since the previous frame), an ETA from the
observed per-task latency histogram, and the health-rule verdicts.

Everything here is read-only over artifacts; the dashboard can watch a
live run from another process without perturbing it.

Because the metrics registry is session-global, every shard's tsdb
journal snapshots the *whole* registry: cross-shard scalar reads must
pick the freshest cursor, never sum across journals (that would
double-count the same counters).
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .health import (
    HealthRule,
    HealthVerdict,
    default_health_rules,
    evaluate_rules,
    overall_status,
    render_health,
)
from .metrics import M_TASK_SECONDS, M_THROUGHPUT
from .status import _format_eta, campaign_status, fleet_status
from .tsdb import TSDB_NAME, TsdbCursor


@dataclasses.dataclass(frozen=True)
class DashSnapshot:
    """One rendered-ready frame of the dashboard."""

    store_path: str
    kind: str  # "campaign" | "fleet"
    tasks_total: int
    tasks_completed: int
    #: (label, done, of) progress rows -- shards for a fleet, grid
    #: cells for a single campaign store.
    rows: Tuple[Tuple[str, int, int], ...]
    #: tsdb journals found / snapshot lines consumed across them.
    journals: int
    snapshots: int
    mean_task_seconds: Optional[float]
    throughput: Optional[float]
    verdicts: Tuple[HealthVerdict, ...]

    @property
    def tasks_remaining(self) -> int:
        return self.tasks_total - self.tasks_completed

    @property
    def fraction(self) -> float:
        return self.tasks_completed / self.tasks_total if self.tasks_total else 1.0

    @property
    def complete(self) -> bool:
        return self.tasks_remaining == 0

    @property
    def eta_s(self) -> Optional[float]:
        if self.mean_task_seconds is None:
            return None
        return self.mean_task_seconds * self.tasks_remaining

    @property
    def health(self) -> str:
        return overall_status(self.verdicts)


def _freshest(cursors: Sequence[TsdbCursor]) -> TsdbCursor:
    """The cursor with the most recent snapshot (registry is global)."""
    best: Optional[TsdbCursor] = None
    for cursor in cursors:
        if cursor.last_t_s is None:
            continue
        if (
            best is None
            or best.last_t_s is None
            or (cursor.last_t_s, cursor.snapshots)
            > (best.last_t_s, best.snapshots)
        ):
            best = cursor
    return best if best is not None else TsdbCursor()


class Dashboard:
    """Warm-state aggregator behind ``repro dash``.

    Keep one instance alive across ``--follow`` refreshes: the tsdb
    cursors advance incrementally instead of re-parsing the journals
    every frame.
    """

    def __init__(
        self,
        store: Union[str, Path],
        rules: Optional[Sequence[HealthRule]] = None,
        baseline: Optional[Union[str, Path]] = None,
    ) -> None:
        self.store = Path(store)
        self.rules: Tuple[HealthRule, ...] = (
            tuple(rules) if rules is not None
            else default_health_rules(baseline)
        )
        self._cursors: Dict[str, TsdbCursor] = {}

    def _is_fleet(self) -> bool:
        # Lazy: repro.store imports repro.telemetry at module level.
        from ..store.fleet import FLEET_MANIFEST_NAME

        return (self.store / FLEET_MANIFEST_NAME).exists()

    def _tsdb_paths(self) -> Tuple[Path, ...]:
        if not self._is_fleet():
            return (self.store / TSDB_NAME,)
        from ..store import FleetStore

        fleet = FleetStore.open(self.store)
        return tuple(
            fleet.tsdb_path(entry) for entry in fleet.manifest.shards
        )

    def _advance_cursors(self) -> List[TsdbCursor]:
        cursors: List[TsdbCursor] = []
        for path in self._tsdb_paths():
            key = str(path)
            cursor = self._cursors.get(key)
            if cursor is None:
                cursor = TsdbCursor()
                self._cursors[key] = cursor
            cursor.advance(path)
            cursors.append(cursor)
        return cursors

    def refresh(self) -> DashSnapshot:
        """Advance the cursors and assemble one dashboard frame."""
        cursors = self._advance_cursors()
        freshest = _freshest(cursors)
        mean_task_seconds = freshest.mean(M_TASK_SECONDS)
        throughput = freshest.last_total(M_THROUGHPUT)
        verdicts = evaluate_rules(freshest, self.rules)

        rows: List[Tuple[str, int, int]] = []
        if self._is_fleet():
            fleet = fleet_status(self.store)
            kind = "fleet"
            tasks_total = fleet.tasks_total
            tasks_completed = fleet.tasks_completed
            for shard in fleet.shards:
                rows.append(
                    (shard.name, shard.tasks_completed, shard.tasks_total)
                )
        else:
            status = campaign_status(self.store)
            kind = "campaign"
            tasks_total = status.tasks_total
            tasks_completed = status.tasks_completed
            for benchmark, core, done in status.cells:
                rows.append(
                    (f"{benchmark} c{core}", done, status.campaigns_per_cell)
                )

        return DashSnapshot(
            store_path=str(self.store),
            kind=kind,
            tasks_total=tasks_total,
            tasks_completed=tasks_completed,
            rows=tuple(rows),
            journals=sum(1 for c in cursors if c.snapshots > 0),
            snapshots=sum(c.snapshots for c in cursors),
            mean_task_seconds=mean_task_seconds,
            throughput=throughput,
            verdicts=verdicts,
        )


def _progress_bar(fraction: float, width: int = 30) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def render_dash(snapshot: DashSnapshot) -> str:
    """One terminal frame for ``repro dash``."""
    lines: List[str] = []
    shards = (
        f" ({len(snapshot.rows)} shards)" if snapshot.kind == "fleet" else ""
    )
    lines.append(
        f"repro dash -- {snapshot.store_path} "
        f"[{snapshot.kind} store{shards}]"
    )
    lines.append(
        f"progress: {_progress_bar(snapshot.fraction)} "
        f"{snapshot.tasks_completed}/{snapshot.tasks_total} tasks "
        f"({snapshot.fraction * 100:.1f} %)"
        + (", complete" if snapshot.complete
           else f", {snapshot.tasks_remaining} remaining")
    )
    if snapshot.complete:
        pass
    elif snapshot.eta_s is not None and snapshot.mean_task_seconds is not None:
        lines.append(
            f"eta: {_format_eta(snapshot.eta_s)} "
            f"at {snapshot.mean_task_seconds:.3f} s/task"
        )
    else:
        lines.append("eta: n/a (no completed-task samples in the tsdb yet)")
    if snapshot.throughput is not None:
        lines.append(f"throughput: {snapshot.throughput:.3f} tasks/s")
    if snapshot.snapshots:
        lines.append(
            f"tsdb: {snapshot.snapshots} snapshots across "
            f"{snapshot.journals} journal(s)"
        )
    else:
        lines.append("tsdb: no snapshots yet (run with --tsdb to record them)")
    label = "shards:" if snapshot.kind == "fleet" else "grid cells:"
    lines.append(label)
    for name, done, of in snapshot.rows:
        lines.append(f"  {name}: {done}/{of}")
    lines.append(render_health(snapshot.verdicts).rstrip("\n"))
    return "\n".join(lines) + "\n"


__all__ = [
    "DashSnapshot",
    "Dashboard",
    "render_dash",
]
