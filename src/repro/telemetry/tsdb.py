"""The metrics time-series journal (``repro-tsdb/v1``).

A tsdb file is an append-only JSONL journal of whole-registry
snapshots: one line per sample, written with flush+fsync by
:class:`TsdbWriter` into the campaign-store (or fleet-shard) directory
it describes.  It is the durable record of *how the run moved* --
watchdog pressure, fsync latency, throughput, model drift over time --
that ``repro dash`` and the health rules read without ever touching
the campaign journal.

Durability rules mirror the campaign journal exactly: a crash can tear
at most the trailing line, loading tolerates (and the next append
heals) that one scar, and corruption anywhere else raises.

The read side is :class:`TsdbCursor`, a warm incremental reader with
the same contract as the store's query indexes: its serialized state
after any sequence of :meth:`~TsdbCursor.advance` calls is byte-equal
to a cursor built by re-parsing the file from scratch, at every kill
point.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .clock import MONOTONIC_CLOCK, Clock
from .metrics import M_TSDB_SNAPSHOTS, MetricsRegistry

TSDB_FORMAT = "repro-tsdb/v1"
TSDB_CURSOR_FORMAT = "repro-tsdb-cursor/v1"

#: File name of the snapshot journal inside a store/shard directory.
TSDB_NAME = "tsdb.jsonl"


def _canonical(payload: Dict[str, Any]) -> str:
    """The one serialization every tsdb artifact uses (byte-comparable)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


class TsdbWriter:
    """Append-only, fsynced snapshot journal for one directory.

    Opening an existing file resumes its sequence numbering; a torn
    trailing line (killed mid-append) is noted by byte offset and
    truncated away before the next append, exactly like
    ``CampaignStore.append_campaign`` heals its journal.
    """

    def __init__(self, path: Union[str, Path], shard: Optional[str] = None) -> None:
        self.path = Path(path)
        self.shard = shard if shard is not None else self.path.parent.name
        self._next_seq = 1
        self._torn_tail_bytes: Optional[int] = None
        self._load_tail()

    def _load_tail(self) -> None:
        """Scan an existing file for the resume seq and any torn tail."""
        if not self.path.exists():
            return
        entries = self.path.read_bytes().splitlines(keepends=True)
        offset = 0
        for index, entry in enumerate(entries):
            is_last = index == len(entries) - 1
            if not entry.strip():
                offset += len(entry)
                continue
            try:
                data = json.loads(entry.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                if is_last:
                    self._torn_tail_bytes = offset
                    return
                raise ValueError(
                    f"corrupt tsdb line {index + 1} in {self.path}: {exc}"
                )
            if is_last and not entry.endswith(b"\n"):
                self._torn_tail_bytes = offset
                return
            if not isinstance(data, dict) or data.get("format") != TSDB_FORMAT:
                raise ValueError(
                    f"tsdb line {index + 1} in {self.path} is not a "
                    f"{TSDB_FORMAT} snapshot"
                )
            self._next_seq = int(data["seq"]) + 1
            offset += len(entry)

    def append(self, registry: MetricsRegistry, t_s: float) -> int:
        """Snapshot ``registry`` and append it durably; returns the seq.

        The snapshot-counter metric is bumped *before* snapshotting, so
        snapshot N reports ``repro_tsdb_snapshots_total == N`` -- the
        journal is self-describing about its own sampling.
        """
        registry.counter(M_TSDB_SNAPSHOTS).inc()
        snapshot = registry.snapshot()
        record = {
            "format": TSDB_FORMAT,
            "seq": self._next_seq,
            "t_s": float(t_s),
            "shard": self.shard,
            "metrics": snapshot["metrics"],
        }
        if self._torn_tail_bytes is not None:
            with self.path.open("r+b") as handle:
                handle.truncate(self._torn_tail_bytes)
                os.fsync(handle.fileno())
            self._torn_tail_bytes = None
        line = json.dumps(record, sort_keys=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        seq = self._next_seq
        self._next_seq += 1
        return seq


class TsdbSampler:
    """Opt-in hook the engine calls after durable checkpoints.

    One sampler serves a whole session; it lazily opens (and caches)
    one :class:`TsdbWriter` per store directory it is asked to sample
    into, so a fleet run lands one tsdb journal per shard.
    """

    def __init__(self, clock: Clock = MONOTONIC_CLOCK) -> None:
        self.clock = clock
        self._writers: Dict[str, TsdbWriter] = {}

    def writer_for(self, directory: Union[str, Path]) -> TsdbWriter:
        target = Path(directory)
        key = str(target)
        writer = self._writers.get(key)
        if writer is None:
            writer = TsdbWriter(target / TSDB_NAME, shard=target.name)
            self._writers[key] = writer
        return writer

    def sample(
        self,
        registry: MetricsRegistry,
        directory: Union[str, Path],
        t_s: Optional[float] = None,
    ) -> int:
        """Append one snapshot of ``registry`` to ``directory``'s tsdb."""
        return self.writer_for(directory).append(
            registry, self.clock() if t_s is None else t_s
        )


# -- read side --------------------------------------------------------------


def _series_key(name: str, labels: Dict[str, str]) -> str:
    """Stable per-child key: metric name + canonical label rendering."""
    rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{rendered}}}" if rendered else name


class TsdbCursor:
    """Warm incremental reader over one tsdb journal.

    The cursor's state is a pure function of the complete-line prefix
    it has consumed: :meth:`advance` only consumes newline-terminated,
    parseable lines, so a torn tail is simply "not consumed yet" --
    the exact set of snapshots a from-scratch re-parse would see.
    :meth:`serialize` is therefore byte-equal to
    ``TsdbCursor.from_reparse(path).serialize()`` at every kill point,
    the same contract the store's query indexes carry.
    """

    def __init__(self) -> None:
        self.consumed_bytes = 0
        self.snapshots = 0
        self.last_seq = 0
        self.first_t_s: Optional[float] = None
        self.last_t_s: Optional[float] = None
        self.shard: Optional[str] = None
        #: series key -> running aggregate (see :meth:`_fold_metric`).
        self.series: Dict[str, Dict[str, Any]] = {}

    @classmethod
    def from_reparse(cls, path: Union[str, Path]) -> "TsdbCursor":
        """A fresh cursor advanced over the whole file in one pass."""
        cursor = cls()
        cursor.advance(path)
        return cursor

    # -- consumption --------------------------------------------------

    def advance(self, path: Union[str, Path]) -> int:
        """Consume snapshots appended since the last call.

        Returns the number of new snapshots folded in.  Missing file
        means "nothing yet", never an error -- the sampler is opt-in.
        """
        target = Path(path)
        if not target.exists():
            return 0
        payload = target.read_bytes()
        if len(payload) < self.consumed_bytes:
            raise ValueError(
                f"tsdb {target} shrank below the cursor's consumed "
                f"prefix ({len(payload)} < {self.consumed_bytes} bytes); "
                f"the file was rewritten, not appended to"
            )
        entries = payload[self.consumed_bytes:].splitlines(keepends=True)
        consumed = 0
        for index, entry in enumerate(entries):
            if not entry.endswith(b"\n"):
                break  # unterminated tail: not durable yet, leave it
            if not entry.strip():
                self.consumed_bytes += len(entry)
                continue
            try:
                data = json.loads(entry.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                if index == len(entries) - 1:
                    break  # torn tail the writer will truncate away
                raise ValueError(
                    f"corrupt tsdb line in {target} at byte "
                    f"{self.consumed_bytes}: {exc}"
                )
            self._fold_snapshot(data, target)
            self.consumed_bytes += len(entry)
            consumed += 1
        return consumed

    def _fold_snapshot(self, data: Any, source: Path) -> None:
        if not isinstance(data, dict) or data.get("format") != TSDB_FORMAT:
            raise ValueError(f"{source}: not a {TSDB_FORMAT} snapshot line")
        seq = int(data["seq"])
        if seq <= self.last_seq:
            raise ValueError(
                f"{source}: snapshot seq {seq} is not monotonic "
                f"(cursor already at {self.last_seq})"
            )
        t_s = float(data["t_s"])
        self.last_seq = seq
        self.last_t_s = t_s
        if self.first_t_s is None:
            self.first_t_s = t_s
        if self.shard is None:
            self.shard = str(data.get("shard"))
        self.snapshots += 1
        for metric in data.get("metrics", []):
            self._fold_metric(metric)

    def _fold_metric(self, metric: Dict[str, Any]) -> None:
        name = str(metric["name"])
        kind = str(metric["kind"])
        for sample in metric.get("samples", []):
            labels = {str(k): str(v) for k, v in sample.get("labels", {}).items()}
            key = _series_key(name, labels)
            entry = self.series.get(key)
            if entry is None:
                entry = {
                    "name": name,
                    "kind": kind,
                    "labels": labels,
                    "points": 0,
                }
                self.series[key] = entry
            entry["points"] = int(entry["points"]) + 1
            if kind == "histogram":
                entry["sum"] = float(sample["sum"])
                entry["count"] = int(sample["count"])
                entry["buckets"] = [
                    [le, int(n)] for le, n in sample["buckets"]
                ]
                entry.setdefault("first_sum", float(sample["sum"]))
                entry.setdefault("first_count", int(sample["count"]))
            else:
                value = float(sample["value"])
                entry["last"] = value
                entry.setdefault("first", value)
                entry["min"] = min(float(entry.get("min", value)), value)
                entry["max"] = max(float(entry.get("max", value)), value)

    # -- queries ------------------------------------------------------

    def samples(self, name: str) -> List[Dict[str, Any]]:
        """Aggregates of every label child of ``name``, key order."""
        return [
            self.series[key]
            for key in sorted(self.series)
            if self.series[key]["name"] == name
        ]

    def last_total(self, name: str) -> Optional[float]:
        """Sum of the latest value across ``name``'s label children.

        For histograms this is the latest ``sum``; ``None`` when the
        journal has never reported the metric.
        """
        entries = self.samples(name)
        if not entries:
            return None
        total = 0.0
        for entry in entries:
            if entry["kind"] == "histogram":
                total += float(entry["sum"])
            else:
                total += float(entry["last"])
        return total

    def histogram_totals(self, name: str) -> Optional[Tuple[float, int, List[Tuple[float, int]]]]:
        """Latest (sum, count, cumulative buckets) merged over children."""
        entries = [e for e in self.samples(name) if e["kind"] == "histogram"]
        if not entries:
            return None
        total_sum = 0.0
        total_count = 0
        merged: Dict[float, int] = {}
        for entry in entries:
            total_sum += float(entry["sum"])
            total_count += int(entry["count"])
            for le, n in entry["buckets"]:
                bound = float("inf") if le == "+Inf" else float(le)
                merged[bound] = merged.get(bound, 0) + int(n)
        buckets = sorted(merged.items())
        return total_sum, total_count, buckets

    def quantile(self, name: str, q: float) -> Optional[float]:
        """Upper-bound quantile estimate from the latest bucket layout.

        Returns the smallest bucket boundary covering the ``q``
        fraction of observations (conservative, like Prometheus'
        ``histogram_quantile`` without interpolation); ``None`` when no
        observations exist.
        """
        totals = self.histogram_totals(name)
        if totals is None:
            return None
        _total_sum, count, buckets = totals
        if count == 0:
            return None
        rank = q * count
        finite = [b for b in buckets if b[0] != float("inf")]
        for bound, cumulative in finite:
            if cumulative >= rank:
                return bound
        return finite[-1][0] if finite else None

    def mean(self, name: str) -> Optional[float]:
        """Latest mean of a histogram metric (sum/count)."""
        totals = self.histogram_totals(name)
        if totals is None or totals[1] == 0:
            return None
        return totals[0] / totals[1]

    # -- serialization ------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "format": TSDB_CURSOR_FORMAT,
            "consumed_bytes": self.consumed_bytes,
            "snapshots": self.snapshots,
            "last_seq": self.last_seq,
            "first_t_s": self.first_t_s,
            "last_t_s": self.last_t_s,
            "shard": self.shard,
            "series": self.series,
        }

    def serialize(self) -> str:
        """Canonical byte-comparable cursor state."""
        return _canonical(self.to_json_dict())


__all__ = [
    "TSDB_CURSOR_FORMAT",
    "TSDB_FORMAT",
    "TSDB_NAME",
    "TsdbCursor",
    "TsdbSampler",
    "TsdbWriter",
]
