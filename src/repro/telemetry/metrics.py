"""Metrics registry: counters, gauges and histograms with exporters.

A :class:`MetricsRegistry` owns a set of named metric families.  Each
family has a kind (``counter``/``gauge``/``histogram``), a help string
and one child instrument per distinct label set.  Two exporters are
provided: a JSON snapshot (format tag :data:`METRICS_FORMAT`) and the
Prometheus text exposition format, dispatched by file extension in
:meth:`MetricsRegistry.write`.

The registry performs no I/O and reads no clock of its own; callers
(the telemetry context layer) feed it observations, which keeps the
simulation packages free of wall-clock access (RPR002).
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Tuple,
    Union,
)

METRICS_FORMAT = "repro-metrics/v1"

# Canonical metric names.  Consumers reference these constants instead
# of repeating strings, and the catalog below pins kind + help text so
# every exporter renders the same metadata.
M_GRID_TASKS = "repro_engine_grid_tasks"
M_TASKS_COMPLETED = "repro_engine_tasks_completed_total"
M_TASKS_SKIPPED = "repro_engine_tasks_skipped_total"
M_CHUNKS_RETRIED = "repro_engine_chunks_retried_total"
M_TASK_SECONDS = "repro_engine_task_seconds"
M_CHUNK_SECONDS = "repro_engine_chunk_seconds"
M_THROUGHPUT = "repro_engine_throughput_tasks_per_second"
M_INTERVENTIONS = "repro_engine_interventions_total"
M_EFFECTS = "repro_effects_total"
M_WATCHDOG = "repro_watchdog_recoveries_total"
M_JOURNAL_APPENDS = "repro_store_journal_appends_total"
M_JOURNAL_FSYNC_SECONDS = "repro_store_journal_fsync_seconds"
M_PARSER_RUNS = "repro_parser_runs_total"
M_KERNEL_CAMPAIGNS = "repro_kernel_campaigns_total"
M_LOG_MESSAGES = "repro_log_messages_total"
M_PREDICTION_PROFILES = "repro_prediction_profiles_total"
M_PREDICTION_CHARACTERIZATIONS = "repro_prediction_characterizations_total"
M_MODEL_RMSE = "repro_model_rmse"
M_MODEL_DRIFT = "repro_model_drift"
M_TSDB_SNAPSHOTS = "repro_tsdb_snapshots_total"

#: Default histogram bucket boundaries, in seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)

#: Journal fsync latencies live well under DEFAULT_BUCKETS' smallest
#: 1 ms bound on any SSD, so the fsync histogram carries its own
#: sub-millisecond resolution.
FSYNC_BUCKETS: Tuple[float, ...] = (
    0.00005,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.05,
    0.25,
    1.0,
)


class MetricSpec(NamedTuple):
    """One catalog entry: kind, help text, optional bucket override."""

    kind: str
    help: str
    #: Histogram bucket boundaries; ``None`` means
    #: :data:`DEFAULT_BUCKETS` (and must be ``None`` for non-histograms).
    buckets: Optional[Tuple[float, ...]] = None


#: name -> :class:`MetricSpec`.  Unknown names may still be registered
#: (kind inferred from the accessor used) but catalog entries keep the
#: core instrumentation self-describing, and histogram entries pin the
#: bucket layout every registry resolves.
METRIC_CATALOG: Dict[str, MetricSpec] = {
    M_GRID_TASKS: MetricSpec("gauge", "Total (benchmark, core, campaign) tasks in the grid."),
    M_TASKS_COMPLETED: MetricSpec("counter", "Campaign tasks completed this run."),
    M_TASKS_SKIPPED: MetricSpec("counter", "Campaign tasks replayed from the journal on resume."),
    M_CHUNKS_RETRIED: MetricSpec("counter", "Task chunks retried after a worker crash."),
    M_TASK_SECONDS: MetricSpec("histogram", "Per-task wall time attributed by the progress tracker."),
    M_CHUNK_SECONDS: MetricSpec("histogram", "Wall time per scheduled task chunk."),
    M_THROUGHPUT: MetricSpec("gauge", "Engine throughput over the finished run, tasks per second."),
    M_INTERVENTIONS: MetricSpec("counter", "Watchdog interventions observed across completed tasks."),
    M_EFFECTS: MetricSpec("counter", "Parsed run records by undervolting effect class (Table 3)."),
    M_WATCHDOG: MetricSpec("counter", "Watchdog recovery actions by kind."),
    M_JOURNAL_APPENDS: MetricSpec("counter", "Campaign records appended to the store journal."),
    M_JOURNAL_FSYNC_SECONDS: MetricSpec(
        "histogram", "Journal append write+fsync latency.", buckets=FSYNC_BUCKETS
    ),
    M_PARSER_RUNS: MetricSpec("counter", "Run blocks parsed from characterization logs."),
    M_KERNEL_CAMPAIGNS: MetricSpec("counter", "Campaigns by evaluation path (batch kernel vs scalar fallback)."),
    M_LOG_MESSAGES: MetricSpec("counter", "Structured log messages by level."),
    M_PREDICTION_PROFILES: MetricSpec("counter", "Performance-counter profiles computed by the prediction pipeline."),
    M_PREDICTION_CHARACTERIZATIONS: MetricSpec("counter", "Characterizations run by the prediction pipeline."),
    M_MODEL_RMSE: MetricSpec("gauge", "Prequential (test-then-train) RMSE of the streaming model."),
    M_MODEL_DRIFT: MetricSpec("gauge", "Streaming model drift: prequential RMSE relative to the naive baseline."),
    M_TSDB_SNAPSHOTS: MetricSpec("counter", "Registry snapshots appended to the metrics time-series journal."),
}

for _name, _spec in METRIC_CATALOG.items():
    if _spec.buckets is not None and _spec.kind != "histogram":
        raise ValueError(
            f"METRIC_CATALOG entry {_name!r} is a {_spec.kind} but "
            f"declares histogram buckets"
        )

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name: {key!r}")
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Last-write-wins value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket distribution with sum and count."""

    __slots__ = ("buckets", "bucket_counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if tuple(sorted(buckets)) != tuple(buckets) or not buckets:
            raise ValueError(f"histogram buckets must be sorted and non-empty: {buckets}")
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += float(value)
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                break

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``+Inf``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out


Instrument = Union[Counter, Gauge, Histogram]


class MetricFamily:
    """All children of one metric name, keyed by label set."""

    __slots__ = ("name", "kind", "help", "children")

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.children: Dict[LabelKey, Instrument] = {}


class MetricsRegistry:
    """A process-local collection of metric families.

    Accessors create families and children on demand; re-registering a
    name with a conflicting kind raises :class:`ValueError` so the two
    exporters can never disagree about a metric's type.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    # -- registration -------------------------------------------------

    def _family(self, name: str, kind: str) -> MetricFamily:
        spec = METRIC_CATALOG.get(name)
        if spec is not None:
            if spec.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {spec.kind} in METRIC_CATALOG, "
                    f"requested as {kind}"
                )
            help_text = spec.help
        else:
            help_text = f"Metric {name}."
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help_text)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"requested as {kind}"
            )
        return family

    def counter(self, name: str, **labels: str) -> Counter:
        family = self._family(name, "counter")
        key = _label_key(labels)
        child = family.children.get(key)
        if child is None:
            child = Counter()
            family.children[key] = child
        assert isinstance(child, Counter)
        return child

    def gauge(self, name: str, **labels: str) -> Gauge:
        family = self._family(name, "gauge")
        key = _label_key(labels)
        child = family.children.get(key)
        if child is None:
            child = Gauge()
            family.children[key] = child
        assert isinstance(child, Gauge)
        return child

    def histogram(
        self,
        name: str,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: str,
    ) -> Histogram:
        """A histogram child; bucket resolution order is explicit
        ``buckets`` > the catalog's per-metric override >
        :data:`DEFAULT_BUCKETS`."""
        family = self._family(name, "histogram")
        key = _label_key(labels)
        child = family.children.get(key)
        if child is None:
            if buckets is None:
                spec = METRIC_CATALOG.get(name)
                buckets = spec.buckets if spec is not None else None
            child = Histogram(buckets if buckets is not None else DEFAULT_BUCKETS)
            family.children[key] = child
        assert isinstance(child, Histogram)
        return child

    def families(self) -> Iterator[MetricFamily]:
        for name in sorted(self._families):
            yield self._families[name]

    # -- exporters ----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable snapshot of every family and child."""
        metrics: List[Dict[str, object]] = []
        for family in self.families():
            samples: List[Dict[str, object]] = []
            for key in sorted(family.children):
                child = family.children[key]
                labels = {k: v for k, v in key}
                if isinstance(child, Histogram):
                    samples.append(
                        {
                            "labels": labels,
                            "sum": child.sum,
                            "count": child.count,
                            "buckets": [
                                ["+Inf" if le == float("inf") else le, n]
                                for le, n in child.cumulative()
                            ],
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            metrics.append(
                {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help,
                    "samples": samples,
                }
            )
        return {"format": METRICS_FORMAT, "metrics": metrics}

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key in sorted(family.children):
                child = family.children[key]
                if isinstance(child, Histogram):
                    for le, n in child.cumulative():
                        bucket_labels = key + (("le", _fmt(le)),)
                        lines.append(
                            f"{family.name}_bucket{_render_labels(bucket_labels)} {n}"
                        )
                    lines.append(
                        f"{family.name}_sum{_render_labels(key)} {_fmt(child.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{_render_labels(key)} {child.count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_render_labels(key)} {_fmt(child.value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def write(self, path: Union[str, Path]) -> Path:
        """Write the registry to ``path``.

        ``.prom``/``.txt`` extensions select the Prometheus text
        exposition; anything else gets the JSON snapshot.
        """
        target = Path(path)
        if target.suffix in (".prom", ".txt"):
            body = self.render_prometheus()
        else:
            body = json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(body, encoding="utf-8")
        return target


def _escape_label_value(value: str) -> str:
    """Escape per the exposition text format: backslash first, then
    double-quote and newline, so unescaping is a left-to-right inverse."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label_value(value: str) -> str:
    """Inverse of :func:`_escape_label_value` (left-to-right scan)."""
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "\\":
                out.append("\\")
                i += 2
                continue
            if nxt == '"':
                out.append('"')
                i += 2
                continue
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _escape_help(text: str) -> str:
    """HELP lines escape only backslash and newline (not quotes)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(pairs: LabelKey) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


__all__ = [
    "METRICS_FORMAT",
    "METRIC_CATALOG",
    "DEFAULT_BUCKETS",
    "FSYNC_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricSpec",
    "MetricsRegistry",
    "M_GRID_TASKS",
    "M_TASKS_COMPLETED",
    "M_TASKS_SKIPPED",
    "M_CHUNKS_RETRIED",
    "M_TASK_SECONDS",
    "M_CHUNK_SECONDS",
    "M_THROUGHPUT",
    "M_INTERVENTIONS",
    "M_EFFECTS",
    "M_WATCHDOG",
    "M_JOURNAL_APPENDS",
    "M_JOURNAL_FSYNC_SECONDS",
    "M_PARSER_RUNS",
    "M_KERNEL_CAMPAIGNS",
    "M_LOG_MESSAGES",
    "M_PREDICTION_PROFILES",
    "M_PREDICTION_CHARACTERIZATIONS",
    "M_MODEL_RMSE",
    "M_MODEL_DRIFT",
    "M_TSDB_SNAPSHOTS",
]
