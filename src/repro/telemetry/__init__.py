"""``repro.telemetry`` -- structured tracing, metrics and logging.

Three coordinated primitives, all determinism-neutral:

* **Tracer** (:mod:`.tracing`): span-per-task JSONL traces; trace id is
  ``(benchmark, core, campaign)`` via :func:`task_trace_id`, with child
  spans for voltage steps, parses, watchdog recoveries and journal
  appends.  Workers record spans locally and forward them to the
  parent on the engine's result channel.
* **Metrics** (:mod:`.metrics`): a counter/gauge/histogram registry
  with JSON-snapshot and Prometheus text-exposition exporters.
* **Structured logging** (:mod:`.log`): named loggers that emit trace
  events and a per-level counter instead of configuring :mod:`logging`.

The ambient context (:mod:`.context`) makes instrumented call sites
one-liners that no-op when telemetry is off; timestamps come only from
the injected monotonic clock (:mod:`.clock`), never from inside
simulation packages, so a telemetry-enabled run produces bit-identical
stores to a telemetry-off run.  :mod:`.status` turns a store journal
plus a live metrics snapshot into the ``repro status`` report.

On top of those write-side primitives sits the read/analysis plane:

* **Trace analytics** (:mod:`.analytics`): deterministic critical-path
  extraction, per-phase time attribution and straggler reports over a
  trace directory -- the ``repro analyze`` subcommand.
* **Metrics time-series journal** (:mod:`.tsdb`): the opt-in
  ``repro-tsdb/v1`` snapshot journal plus the warm
  :class:`~.tsdb.TsdbCursor` reader whose state always equals a full
  re-parse.
* **Health rules** (:mod:`.health`): declarative bounds over the tsdb
  producing ``repro-health/v1`` verdicts.
* **Dashboard** (:mod:`.dash`): the ``repro dash`` terminal view
  aggregating progress, tsdb metrics, ETA and health.
"""

from __future__ import annotations

from .analytics import (
    ANALYSIS_FORMAT,
    PHASES,
    CriticalPathStep,
    TaskSummary,
    TraceAnalysis,
    analyze_trace_dir,
    render_analysis,
)
from .clock import MONOTONIC_CLOCK, Clock
from .context import (
    TelemetrySession,
    clock,
    current_session,
    emit_spans,
    event,
    inc_counter,
    observe,
    sample_tsdb,
    set_gauge,
    shielded,
    span,
    task_trace,
    telemetry_session,
)
from .dash import Dashboard, DashSnapshot, render_dash
from .health import (
    HEALTH_FORMAT,
    HealthRule,
    HealthVerdict,
    default_health_rules,
    evaluate_rules,
    health_report,
    overall_status,
    render_health,
    serialize_health,
)
from .log import LOG_LEVELS, StructuredLogger, get_logger
from .metrics import (
    DEFAULT_BUCKETS,
    FSYNC_BUCKETS,
    METRIC_CATALOG,
    METRICS_FORMAT,
    M_CHUNK_SECONDS,
    M_CHUNKS_RETRIED,
    M_EFFECTS,
    M_GRID_TASKS,
    M_INTERVENTIONS,
    M_JOURNAL_APPENDS,
    M_JOURNAL_FSYNC_SECONDS,
    M_KERNEL_CAMPAIGNS,
    M_LOG_MESSAGES,
    M_MODEL_DRIFT,
    M_MODEL_RMSE,
    M_PARSER_RUNS,
    M_PREDICTION_CHARACTERIZATIONS,
    M_PREDICTION_PROFILES,
    M_TASK_SECONDS,
    M_TASKS_COMPLETED,
    M_TASKS_SKIPPED,
    M_THROUGHPUT,
    M_TSDB_SNAPSHOTS,
    M_WATCHDOG,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricSpec,
    MetricsRegistry,
)
from .status import (
    CampaignStatus,
    FleetShardStatus,
    FleetStatus,
    ModelStatus,
    campaign_status,
    fleet_status,
    model_statuses,
    render_fleet_status,
    render_model_status,
    render_status,
)
from .tracing import (
    PARENT_SPAN_ID_BASE,
    SESSION_TRACE_ID,
    SPAN_FORMAT,
    SPAN_SCHEMA,
    AttrValue,
    SpanRecord,
    SpanSink,
    Tracer,
    TraceWriter,
    load_spans,
    task_trace_id,
    validate_span,
)
from .tsdb import (
    TSDB_CURSOR_FORMAT,
    TSDB_FORMAT,
    TSDB_NAME,
    TsdbCursor,
    TsdbSampler,
    TsdbWriter,
)

__all__ = [
    # analytics
    "ANALYSIS_FORMAT",
    "PHASES",
    "CriticalPathStep",
    "TaskSummary",
    "TraceAnalysis",
    "analyze_trace_dir",
    "render_analysis",
    # clock
    "Clock",
    "MONOTONIC_CLOCK",
    # context
    "TelemetrySession",
    "clock",
    "current_session",
    "emit_spans",
    "event",
    "inc_counter",
    "observe",
    "sample_tsdb",
    "set_gauge",
    "shielded",
    "span",
    "task_trace",
    "telemetry_session",
    # dash
    "Dashboard",
    "DashSnapshot",
    "render_dash",
    # health
    "HEALTH_FORMAT",
    "HealthRule",
    "HealthVerdict",
    "default_health_rules",
    "evaluate_rules",
    "health_report",
    "overall_status",
    "render_health",
    "serialize_health",
    # log
    "LOG_LEVELS",
    "StructuredLogger",
    "get_logger",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricSpec",
    "MetricsRegistry",
    "METRICS_FORMAT",
    "METRIC_CATALOG",
    "DEFAULT_BUCKETS",
    "FSYNC_BUCKETS",
    "M_GRID_TASKS",
    "M_TASKS_COMPLETED",
    "M_TASKS_SKIPPED",
    "M_CHUNKS_RETRIED",
    "M_TASK_SECONDS",
    "M_CHUNK_SECONDS",
    "M_THROUGHPUT",
    "M_INTERVENTIONS",
    "M_EFFECTS",
    "M_WATCHDOG",
    "M_JOURNAL_APPENDS",
    "M_JOURNAL_FSYNC_SECONDS",
    "M_PARSER_RUNS",
    "M_KERNEL_CAMPAIGNS",
    "M_LOG_MESSAGES",
    "M_PREDICTION_PROFILES",
    "M_PREDICTION_CHARACTERIZATIONS",
    "M_MODEL_RMSE",
    "M_MODEL_DRIFT",
    "M_TSDB_SNAPSHOTS",
    # status
    "CampaignStatus",
    "ModelStatus",
    "FleetShardStatus",
    "FleetStatus",
    "campaign_status",
    "fleet_status",
    "model_statuses",
    "render_fleet_status",
    "render_model_status",
    "render_status",
    # tracing
    "SPAN_FORMAT",
    "SPAN_SCHEMA",
    "SESSION_TRACE_ID",
    "PARENT_SPAN_ID_BASE",
    "AttrValue",
    "SpanRecord",
    "SpanSink",
    "Tracer",
    "TraceWriter",
    "load_spans",
    "task_trace_id",
    "validate_span",
    # tsdb
    "TSDB_CURSOR_FORMAT",
    "TSDB_FORMAT",
    "TSDB_NAME",
    "TsdbCursor",
    "TsdbSampler",
    "TsdbWriter",
]
