"""Structured event tracer emitting span-per-task JSONL traces.

Each campaign task gets a trace identified by ``(benchmark, core,
campaign)`` (see :func:`task_trace_id`).  Spans nest: the task root
span contains child spans for voltage steps, parses, watchdog
recoveries and journal appends.  Records are JSON dictionaries
validated against :data:`SPAN_SCHEMA`, one per line in a
``trace-<id>.jsonl`` file written by :class:`TraceWriter`.

Timestamps come from the injected :data:`~repro.telemetry.clock.Clock`
-- tracing never reads wall-clock time on its own, so a fake clock
makes traces fully deterministic in tests.

A :class:`Tracer` is single-threaded by construction: the engine gives
each worker task its own tracer recording into a local list, and the
recorded spans travel back to the parent on the result channel.
"""

from __future__ import annotations

import json
import re
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple, Union

from .clock import MONOTONIC_CLOCK, Clock

SPAN_FORMAT = "repro-span/v1"

#: Trace id used for spans emitted outside any campaign task (engine
#: lifecycle, CLI-level events).
SESSION_TRACE_ID = "session"

#: The parent-process tracer allocates span ids from this base so its
#: events can share a trace file with worker-recorded spans (which
#: number from 1) without id collisions.
PARENT_SPAN_ID_BASE = 1_000_000

AttrValue = Union[str, int, float, bool, None]

#: Published span schema: field name -> (type spec, required).
#: ``validate_span`` checks records against this table and it is the
#: contract documented in docs/observability.md.
SPAN_SCHEMA: Dict[str, Tuple[str, bool]] = {
    "format": ("str", True),
    "trace_id": ("str", True),
    "name": ("str", True),
    "span_id": ("int", True),
    "parent_id": ("int|null", True),
    "start_s": ("float", True),
    "end_s": ("float", True),
    "status": ("str", True),
    "attributes": ("object", True),
}

_SPAN_STATUSES = frozenset({"ok", "error"})


@dataclass(frozen=True)
class SpanRecord:
    """One completed span. Zero-duration spans model point events."""

    trace_id: str
    name: str
    span_id: int
    parent_id: Optional[int]
    start_s: float
    end_s: float
    status: str = "ok"
    attributes: Tuple[Tuple[str, AttrValue], ...] = ()

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "format": SPAN_FORMAT,
            "trace_id": self.trace_id,
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "status": self.status,
            "attributes": {k: v for k, v in self.attributes},
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, object]) -> "SpanRecord":
        problems = validate_span(data)
        if problems:
            raise ValueError(f"invalid span record: {'; '.join(problems)}")
        attributes = data["attributes"]
        assert isinstance(attributes, dict)
        parent = data["parent_id"]
        return cls(
            trace_id=str(data["trace_id"]),
            name=str(data["name"]),
            span_id=int(str(data["span_id"])),
            parent_id=None if parent is None else int(str(parent)),
            start_s=float(str(data["start_s"])),
            end_s=float(str(data["end_s"])),
            status=str(data["status"]),
            attributes=tuple(sorted(attributes.items())),
        )


def validate_span(data: Mapping[str, object]) -> List[str]:
    """Return a list of schema violations (empty == valid)."""
    problems: List[str] = []
    for key, (spec, required) in SPAN_SCHEMA.items():
        if key not in data:
            if required:
                problems.append(f"missing field {key!r}")
            continue
        value = data[key]
        if spec == "str" and not isinstance(value, str):
            problems.append(f"{key!r} must be a string, got {type(value).__name__}")
        elif spec == "int" and not (isinstance(value, int) and not isinstance(value, bool)):
            problems.append(f"{key!r} must be an int, got {type(value).__name__}")
        elif spec == "int|null" and value is not None and not (
            isinstance(value, int) and not isinstance(value, bool)
        ):
            problems.append(f"{key!r} must be an int or null, got {type(value).__name__}")
        elif spec == "float" and not isinstance(value, (int, float)):
            problems.append(f"{key!r} must be a number, got {type(value).__name__}")
        elif spec == "object" and not isinstance(value, dict):
            problems.append(f"{key!r} must be an object, got {type(value).__name__}")
    extra = set(data) - set(SPAN_SCHEMA)
    if extra:
        problems.append(f"unknown fields: {sorted(extra)}")
    if isinstance(data.get("format"), str) and data["format"] != SPAN_FORMAT:
        problems.append(f"format must be {SPAN_FORMAT!r}, got {data['format']!r}")
    if isinstance(data.get("status"), str) and data["status"] not in _SPAN_STATUSES:
        problems.append(f"status must be one of {sorted(_SPAN_STATUSES)}")
    return problems


def task_trace_id(benchmark: str, core: int, campaign: int) -> str:
    """Canonical trace id for one (benchmark, core, campaign) task."""
    return f"{benchmark}:c{core}:k{campaign}"


SpanSink = Callable[[SpanRecord], None]


@dataclass
class _OpenSpan:
    trace_id: str
    name: str
    span_id: int
    parent_id: Optional[int]
    start_s: float
    attributes: Dict[str, AttrValue] = field(default_factory=dict)


class Tracer:
    """Records spans into a sink. Single-threaded per instance."""

    def __init__(
        self,
        sink: SpanSink,
        clock: Clock = MONOTONIC_CLOCK,
        first_id: int = 1,
    ) -> None:
        self._sink = sink
        self._clock = clock
        self._next_id = first_id
        self._stack: List[_OpenSpan] = []

    def _allocate_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    @property
    def current_trace_id(self) -> str:
        return self._stack[-1].trace_id if self._stack else SESSION_TRACE_ID

    @property
    def current_span_id(self) -> Optional[int]:
        return self._stack[-1].span_id if self._stack else None

    @contextmanager
    def span(
        self,
        name: str,
        trace_id: Optional[str] = None,
        **attributes: AttrValue,
    ) -> Iterator[None]:
        """Open a span; nested spans become children.

        ``trace_id`` defaults to the enclosing span's trace (or
        :data:`SESSION_TRACE_ID` at top level).  The span closes with
        status ``"error"`` if the body raises.
        """
        open_span = _OpenSpan(
            trace_id=trace_id if trace_id is not None else self.current_trace_id,
            name=name,
            span_id=self._allocate_id(),
            parent_id=self.current_span_id,
            start_s=self._clock(),
            attributes=dict(attributes),
        )
        self._stack.append(open_span)
        status = "ok"
        try:
            yield
        except BaseException:
            status = "error"
            raise
        finally:
            self._stack.pop()
            self._sink(
                SpanRecord(
                    trace_id=open_span.trace_id,
                    name=open_span.name,
                    span_id=open_span.span_id,
                    parent_id=open_span.parent_id,
                    start_s=open_span.start_s,
                    end_s=self._clock(),
                    status=status,
                    attributes=tuple(sorted(open_span.attributes.items())),
                )
            )

    def event(
        self,
        name: str,
        trace_id: Optional[str] = None,
        **attributes: AttrValue,
    ) -> None:
        """Emit a zero-duration span marking a point event."""
        now = self._clock()
        self._sink(
            SpanRecord(
                trace_id=trace_id if trace_id is not None else self.current_trace_id,
                name=name,
                span_id=self._allocate_id(),
                parent_id=self.current_span_id,
                start_s=now,
                end_s=now,
                attributes=tuple(sorted(attributes.items())),
            )
        )

    def emit(self, record: SpanRecord) -> None:
        """Route an externally recorded span (e.g. from a worker) to the sink."""
        self._sink(record)


_UNSAFE_TRACE_CHARS = re.compile(r"[^A-Za-z0-9._-]+")


class TraceWriter:
    """Span sink appending JSONL trace files, one file per trace id."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, trace_id: str) -> Path:
        safe = _UNSAFE_TRACE_CHARS.sub("_", trace_id) or "trace"
        return self.directory / f"trace-{safe}.jsonl"

    def __call__(self, record: SpanRecord) -> None:
        line = json.dumps(record.to_json_dict(), sort_keys=True)
        with open(self.path_for(record.trace_id), "a", encoding="utf-8") as handle:
            handle.write(line + "\n")


def load_spans(path: Union[str, Path], strict: bool = True) -> List[SpanRecord]:
    """Parse one JSONL trace file back into validated records.

    With ``strict=False`` a torn *trailing* line -- the scar of a
    writer killed mid-append -- is dropped instead of raising, under
    the same rules the campaign journal heals by: only the last line
    may fail to decode, and a last line without a terminating newline
    is a stub even when it happens to parse.  Corruption anywhere else
    always raises, in either mode.
    """
    entries = Path(path).read_bytes().splitlines(keepends=True)
    records: List[SpanRecord] = []
    for index, entry in enumerate(entries):
        is_last = index == len(entries) - 1
        if not entry.strip():
            continue
        try:
            data = json.loads(entry.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            if is_last and not strict:
                break  # torn tail of an interrupted append
            raise ValueError(
                f"corrupt trace line {index + 1} in {path}: {exc}"
            )
        if is_last and not entry.endswith(b"\n") and not strict:
            # Parseable but unterminated: still an interrupted append.
            break
        if not isinstance(data, dict):
            raise ValueError(f"trace line is not an object: {entry!r}")
        records.append(SpanRecord.from_json_dict(data))
    return records


__all__ = [
    "SPAN_FORMAT",
    "SPAN_SCHEMA",
    "SESSION_TRACE_ID",
    "PARENT_SPAN_ID_BASE",
    "AttrValue",
    "SpanRecord",
    "SpanSink",
    "Tracer",
    "TraceWriter",
    "load_spans",
    "task_trace_id",
    "validate_span",
]
