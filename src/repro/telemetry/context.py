"""Ambient telemetry context built on :mod:`contextvars`.

A :class:`TelemetrySession` bundles an optional tracer, an optional
metrics registry and the clock they share.  :func:`telemetry_session`
installs one as the ambient session for the dynamic extent of a
``with`` block; the module-level one-liners (:func:`span`,
:func:`event`, :func:`inc_counter`, ...) look the session up and no-op
when none is active, so instrumented call sites cost a dictionary
lookup when telemetry is off and never change simulation behaviour.

Contextvars do not cross process boundaries: worker processes run each
task under a fresh local session (see ``repro.parallel.tasks``) and
forward recorded spans back on the result channel.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Tuple, Union

from .clock import MONOTONIC_CLOCK, Clock
from .metrics import MetricsRegistry
from .tracing import AttrValue, SpanRecord, Tracer, task_trace_id
from .tsdb import TsdbSampler


@dataclass
class TelemetrySession:
    """The ambient telemetry capability set for the current context."""

    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None
    clock: Clock = MONOTONIC_CLOCK
    #: Opt-in metrics time-series sampler; when present (and a registry
    #: is active), :func:`sample_tsdb` appends registry snapshots to the
    #: store's ``tsdb.jsonl`` journal.
    tsdb: Optional[TsdbSampler] = None


_SESSION: ContextVar[Optional[TelemetrySession]] = ContextVar(
    "repro_telemetry_session", default=None
)


def current_session() -> Optional[TelemetrySession]:
    """The active session, or ``None`` when telemetry is off."""
    return _SESSION.get()


@contextmanager
def telemetry_session(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    clock: Clock = MONOTONIC_CLOCK,
    tsdb: Optional[TsdbSampler] = None,
) -> Iterator[TelemetrySession]:
    """Install a session as the ambient telemetry context."""
    session = TelemetrySession(
        tracer=tracer, metrics=metrics, clock=clock, tsdb=tsdb
    )
    token = _SESSION.set(session)
    try:
        yield session
    finally:
        _SESSION.reset(token)


@contextmanager
def shielded() -> Iterator[None]:
    """Suppress any ambient session for the extent of the block.

    The engine shields worker tasks that are not collecting spans so
    per-task instrumentation can never double-count with the parent's
    outcome-based aggregation.
    """
    token = _SESSION.set(None)
    try:
        yield
    finally:
        _SESSION.reset(token)


def clock() -> float:
    """Read the session clock; 0.0 when telemetry is off.

    Only meaningful as a difference between two reads taken under the
    same session -- callers use it for latency observations.
    """
    session = _SESSION.get()
    return session.clock() if session is not None else 0.0


# -- tracer one-liners (no-ops without an active tracer) ---------------


@contextmanager
def span(name: str, trace_id: Optional[str] = None, **attributes: AttrValue) -> Iterator[None]:
    session = _SESSION.get()
    if session is None or session.tracer is None:
        yield
        return
    with session.tracer.span(name, trace_id=trace_id, **attributes):
        yield


@contextmanager
def task_trace(
    benchmark: str, core: int, campaign: int, **attributes: AttrValue
) -> Iterator[None]:
    """Open the root span of one campaign task's trace."""
    with span(
        "task",
        trace_id=task_trace_id(benchmark, core, campaign),
        benchmark=benchmark,
        core=core,
        campaign=campaign,
        **attributes,
    ):
        yield


def event(name: str, trace_id: Optional[str] = None, **attributes: AttrValue) -> None:
    session = _SESSION.get()
    if session is not None and session.tracer is not None:
        session.tracer.event(name, trace_id=trace_id, **attributes)


def emit_spans(records: Iterable[SpanRecord]) -> None:
    """Forward worker-recorded spans to the session tracer's sink."""
    session = _SESSION.get()
    if session is not None and session.tracer is not None:
        for record in records:
            session.tracer.emit(record)


# -- metrics one-liners (no-ops without an active registry) ------------


def inc_counter(name: str, amount: float = 1.0, **labels: str) -> None:
    session = _SESSION.get()
    if session is not None and session.metrics is not None:
        session.metrics.counter(name, **labels).inc(amount)


def set_gauge(name: str, value: float, **labels: str) -> None:
    session = _SESSION.get()
    if session is not None and session.metrics is not None:
        session.metrics.gauge(name, **labels).set(value)


def observe(
    name: str,
    value: float,
    buckets: Optional[Tuple[float, ...]] = None,
    **labels: str,
) -> None:
    session = _SESSION.get()
    if session is not None and session.metrics is not None:
        session.metrics.histogram(name, buckets=buckets, **labels).observe(value)


def sample_tsdb(directory: Union[str, Path]) -> None:
    """Append a registry snapshot to ``directory``'s tsdb journal.

    No-op unless the ambient session carries both a metrics registry
    and a :class:`~repro.telemetry.tsdb.TsdbSampler` -- the journal is
    strictly opt-in and never perturbs campaign artifacts.
    """
    session = _SESSION.get()
    if session is None or session.metrics is None or session.tsdb is None:
        return
    session.tsdb.sample(session.metrics, directory, t_s=session.clock())


__all__ = [
    "TelemetrySession",
    "clock",
    "current_session",
    "emit_spans",
    "event",
    "inc_counter",
    "observe",
    "sample_tsdb",
    "set_gauge",
    "shielded",
    "span",
    "task_trace",
    "telemetry_session",
]
