"""Monotonic clock injection point for the telemetry layer.

Telemetry is the *only* part of the library allowed to read wall-clock
time (RPR002 bans it inside the simulation packages).  Everything that
needs a timestamp takes a ``Clock`` callable, defaulting to
:data:`MONOTONIC_CLOCK`, so tests can substitute a deterministic fake
and simulation results can never depend on real time.
"""

from __future__ import annotations

import time
from typing import Callable

Clock = Callable[[], float]

#: The one sanctioned wall-clock source.  Injected at the telemetry
#: boundary; never read from inside simulation code.
MONOTONIC_CLOCK: Clock = time.monotonic

__all__ = ["Clock", "MONOTONIC_CLOCK"]
