"""Declarative health rules over the metrics time-series journal.

A :class:`HealthRule` names a metric, a statistic over the tsdb cursor
(last value, p99, mean, or a ratio against another metric's last
value), a comparison and a bound.  :func:`evaluate_rules` turns a
:class:`~repro.telemetry.tsdb.TsdbCursor` into ``repro-health/v1``
verdicts; :func:`default_health_rules` is the stock rule set ``repro
dash`` ships with -- watchdog-rate ceiling, fsync-latency p99 bound,
model-drift ratio and a throughput floor derived from
``benchmarks/framework_baseline.json``.

Rules that reference a metric the journal has never reported verdict
``skip``, not ``fail``: an absent signal is an answer about coverage,
not about health.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .metrics import (
    M_INTERVENTIONS,
    M_JOURNAL_FSYNC_SECONDS,
    M_MODEL_DRIFT,
    M_TASKS_COMPLETED,
    M_THROUGHPUT,
)
from .tsdb import TsdbCursor

HEALTH_FORMAT = "repro-health/v1"

#: Supported statistics over the cursor.
STATS = ("last", "mean", "p99", "per")

#: Supported comparison operators.
OPS = ("<=", ">=")

#: Throughput floor slack against the committed single-run baseline:
#: CI machines and laptops differ, pathological regressions do not.
BASELINE_THROUGHPUT_SLACK = 1000.0


@dataclasses.dataclass(frozen=True)
class HealthRule:
    """One declarative bound over a tsdb metric."""

    name: str
    metric: str
    stat: str
    bound: float
    op: str = "<="
    #: With ``stat="per"``: divide the metric's last total by this
    #: metric's last total (e.g. watchdog recoveries per completed task).
    per_metric: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.stat not in STATS:
            raise ValueError(
                f"rule {self.name!r}: stat must be one of {STATS}, "
                f"got {self.stat!r}"
            )
        if self.op not in OPS:
            raise ValueError(
                f"rule {self.name!r}: op must be one of {OPS}, "
                f"got {self.op!r}"
            )
        if (self.stat == "per") != (self.per_metric is not None):
            raise ValueError(
                f"rule {self.name!r}: per_metric is required exactly "
                f"when stat is 'per'"
            )

    def observe(self, cursor: TsdbCursor) -> Optional[float]:
        """The rule's statistic from the cursor; None when unobserved."""
        if self.stat == "last":
            return cursor.last_total(self.metric)
        if self.stat == "mean":
            return cursor.mean(self.metric)
        if self.stat == "p99":
            return cursor.quantile(self.metric, 0.99)
        assert self.per_metric is not None
        numerator = cursor.last_total(self.metric)
        denominator = cursor.last_total(self.per_metric)
        if numerator is None or denominator is None or denominator == 0:
            return None
        return numerator / denominator


@dataclasses.dataclass(frozen=True)
class HealthVerdict:
    """One rule's outcome: ok / fail / skip plus the observed value."""

    rule: str
    status: str
    bound: float
    op: str
    observed: Optional[float] = None
    description: str = ""

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "status": self.status,
            "bound": self.bound,
            "op": self.op,
            "observed": self.observed,
            "description": self.description,
        }


def evaluate_rules(
    cursor: TsdbCursor, rules: Sequence[HealthRule]
) -> Tuple[HealthVerdict, ...]:
    """Evaluate every rule against one cursor, rule order preserved."""
    verdicts: List[HealthVerdict] = []
    for rule in rules:
        observed = rule.observe(cursor)
        if observed is None:
            status = "skip"
        elif rule.op == "<=":
            status = "ok" if observed <= rule.bound else "fail"
        else:
            status = "ok" if observed >= rule.bound else "fail"
        verdicts.append(
            HealthVerdict(
                rule=rule.name,
                status=status,
                bound=rule.bound,
                op=rule.op,
                observed=observed,
                description=rule.description,
            )
        )
    return tuple(verdicts)


def overall_status(verdicts: Sequence[HealthVerdict]) -> str:
    """Worst verdict wins: fail > ok > skip (all-skip is 'skip')."""
    if any(v.status == "fail" for v in verdicts):
        return "fail"
    if any(v.status == "ok" for v in verdicts):
        return "ok"
    return "skip"


def health_report(
    verdicts: Sequence[HealthVerdict], source: Optional[str] = None
) -> Dict[str, Any]:
    """The ``repro-health/v1`` report document."""
    return {
        "format": HEALTH_FORMAT,
        "source": source,
        "status": overall_status(verdicts),
        "verdicts": [v.to_json_dict() for v in verdicts],
    }


def serialize_health(
    verdicts: Sequence[HealthVerdict], source: Optional[str] = None
) -> str:
    """Canonical report bytes (what ``repro dash --health-out`` writes)."""
    return json.dumps(
        health_report(verdicts, source=source), indent=2, sort_keys=True
    ) + "\n"


def render_health(verdicts: Sequence[HealthVerdict]) -> str:
    """Terminal rendering of a verdict list."""
    lines = [f"health: {overall_status(verdicts)}"]
    for verdict in verdicts:
        observed = (
            f"{verdict.observed:.6g}" if verdict.observed is not None
            else "--"
        )
        lines.append(
            f"  [{verdict.status:>4}] {verdict.rule:<24} "
            f"{observed} {verdict.op} {verdict.bound:.6g}"
        )
    return "\n".join(lines) + "\n"


def default_health_rules(
    baseline: Optional[Union[str, Path, Dict[str, float]]] = None,
) -> Tuple[HealthRule, ...]:
    """The stock rule set.

    ``baseline`` -- a dict or a path to
    ``benchmarks/framework_baseline.json`` -- enables the throughput
    floor; without it the throughput rule is omitted (not skipped:
    there is no bound to compare against).
    """
    rules = [
        HealthRule(
            name="watchdog-rate",
            # M_INTERVENTIONS, not M_WATCHDOG: workers count recovery
            # actions under shielded local sessions, so the parent
            # registry (what the tsdb snapshots) only ever sees the
            # outcome-aggregated intervention counter.
            metric=M_INTERVENTIONS,
            stat="per",
            per_metric=M_TASKS_COMPLETED,
            bound=50.0,
            op="<=",
            description="watchdog interventions per completed task",
        ),
        HealthRule(
            name="fsync-p99",
            metric=M_JOURNAL_FSYNC_SECONDS,
            stat="p99",
            bound=0.25,
            op="<=",
            description="journal append write+fsync p99 latency (s)",
        ),
        HealthRule(
            name="model-drift",
            metric=M_MODEL_DRIFT,
            stat="last",
            bound=1.5,
            op="<=",
            description="streaming-model RMSE vs naive baseline",
        ),
    ]
    if baseline is not None:
        if isinstance(baseline, (str, Path)):
            data = json.loads(Path(baseline).read_text(encoding="utf-8"))
        else:
            data = dict(baseline)
        campaign_min_s = float(data["campaign_min_s"])
        floor = 1.0 / (campaign_min_s * BASELINE_THROUGHPUT_SLACK)
        rules.append(
            HealthRule(
                name="throughput-floor",
                metric=M_THROUGHPUT,
                stat="last",
                bound=floor,
                op=">=",
                description=(
                    "tasks/s vs framework_baseline.json campaign_min_s "
                    f"with {BASELINE_THROUGHPUT_SLACK:g}x slack"
                ),
            )
        )
    return tuple(rules)


__all__ = [
    "BASELINE_THROUGHPUT_SLACK",
    "HEALTH_FORMAT",
    "HealthRule",
    "HealthVerdict",
    "default_health_rules",
    "evaluate_rules",
    "health_report",
    "overall_status",
    "render_health",
    "serialize_health",
]
