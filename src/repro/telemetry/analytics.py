"""Offline trace analytics over ``repro-span/v1`` trace directories.

:func:`analyze_trace_dir` turns the JSONL traces a ``--trace DIR`` run
left behind into the questions an operator actually asks:

* **Per-phase time attribution** -- how much of the session went to
  voltage stepping, log parsing, journal appends, worker overhead and
  engine overhead.  Attribution is a boundary sweep over every task
  trace's innermost-span segments, clipped to the ``engine.run``
  session window(s); concurrent segments share their elementary
  interval equally, and uncovered session time books to
  ``engine_overhead`` -- so the phases sum to the total session span
  time exactly (one float rounding away).
* **Critical paths** -- per task, the deterministic longest-child walk
  from the root span down (ties broken by earlier start, then smaller
  span id).
* **Straggler/utilization reports** across parallel workers, and an
  ASCII flame/treemap rendering for terminals.

Everything is a pure function of the trace bytes: the same trace
directory analyzes to the same report bytes, every time.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .tracing import SESSION_TRACE_ID, SpanRecord, load_spans

ANALYSIS_FORMAT = "repro-analysis/v1"

#: Attribution phases, in report order.
PHASES = (
    "voltage_step",
    "parse",
    "journal_append",
    "watchdog",
    "worker_overhead",
    "engine_overhead",
)

#: span name -> phase; anything unlisted inside a task trace books to
#: ``worker_overhead`` (the task/campaign shells around the real work).
_PHASE_OF = {
    "voltage_step": "voltage_step",
    "parse": "parse",
    "journal.append": "journal_append",
    "watchdog.recovery": "watchdog",
}

#: Stragglers run longer than this multiple of the median task.
STRAGGLER_FACTOR = 1.5


@dataclasses.dataclass(frozen=True)
class CriticalPathStep:
    """One hop of a task's longest-child walk."""

    name: str
    span_id: int
    depth: int
    duration_s: float
    #: Duration not covered by the step's own children.
    self_s: float


@dataclasses.dataclass(frozen=True)
class TaskSummary:
    """One task trace, reduced."""

    trace_id: str
    benchmark: str
    core: int
    campaign: int
    start_s: float
    end_s: float
    spans: int
    errors: int
    watchdog_events: int
    #: Innermost-span self time per phase, unshared (this task alone).
    phase_seconds: Tuple[Tuple[str, float], ...]
    critical_path: Tuple[CriticalPathStep, ...]

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclasses.dataclass(frozen=True)
class TraceAnalysis:
    """The full deterministic report over one trace directory."""

    trace_dir: str
    #: ``engine.run`` session windows (start, end), chronological.
    session_windows: Tuple[Tuple[float, float], ...]
    backend: str
    jobs: int
    tasks: Tuple[TaskSummary, ...]
    #: Fair-share attribution across the whole session; sums to
    #: :attr:`total_session_s` (within float rounding).
    phase_seconds: Tuple[Tuple[str, float], ...]
    #: Trace ids of tasks slower than ``STRAGGLER_FACTOR`` x median.
    stragglers: Tuple[str, ...]

    @property
    def total_session_s(self) -> float:
        return sum(end - start for start, end in self.session_windows)

    @property
    def utilization(self) -> float:
        """Busy task time / (jobs x session time); 0 when unknown."""
        capacity = self.jobs * self.total_session_s
        if capacity <= 0:
            return 0.0
        busy = sum(task.duration_s for task in self.tasks)
        return busy / capacity

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "format": ANALYSIS_FORMAT,
            "trace_dir": self.trace_dir,
            "session_windows": [list(w) for w in self.session_windows],
            "total_session_s": self.total_session_s,
            "backend": self.backend,
            "jobs": self.jobs,
            "utilization": self.utilization,
            "phase_seconds": {phase: s for phase, s in self.phase_seconds},
            "stragglers": list(self.stragglers),
            "tasks": [
                {
                    "trace_id": task.trace_id,
                    "benchmark": task.benchmark,
                    "core": task.core,
                    "campaign": task.campaign,
                    "start_s": task.start_s,
                    "end_s": task.end_s,
                    "duration_s": task.duration_s,
                    "spans": task.spans,
                    "errors": task.errors,
                    "watchdog_events": task.watchdog_events,
                    "phase_seconds": {p: s for p, s in task.phase_seconds},
                    "critical_path": [
                        dataclasses.asdict(step) for step in task.critical_path
                    ],
                }
                for task in self.tasks
            ],
        }

    def serialize(self) -> str:
        """Canonical byte-comparable report (same dir -> same bytes)."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"


# -- span geometry ----------------------------------------------------------


def _innermost_segments(
    spans: Sequence[SpanRecord],
) -> List[Tuple[float, float, str]]:
    """``(start, end, phase)`` segments, innermost span winning.

    A boundary sweep over one trace: at every elementary interval the
    covering span that started last (ties: ends first, then larger
    span id) is "the" activity, which for properly nested spans is the
    innermost frame.  Zero-duration events contribute no segments.
    """
    timed = [s for s in spans if s.end_s > s.start_s]
    if not timed:
        return []
    bounds = sorted({t for s in timed for t in (s.start_s, s.end_s)})
    segments: List[Tuple[float, float, str]] = []
    for left, right in zip(bounds, bounds[1:]):
        covering = [s for s in timed if s.start_s <= left and s.end_s >= right]
        if not covering:
            continue
        inner = max(covering, key=lambda s: (s.start_s, -s.end_s, s.span_id))
        phase = _PHASE_OF.get(inner.name, "worker_overhead")
        if segments and segments[-1][2] == phase and segments[-1][1] == left:
            segments[-1] = (segments[-1][0], right, phase)
        else:
            segments.append((left, right, phase))
    return segments


def _fair_share_attribution(
    windows: Sequence[Tuple[float, float]],
    segments: Sequence[Tuple[float, float, str]],
) -> Dict[str, float]:
    """Partition every session window across concurrent segments.

    Each elementary interval's duration is split equally among the
    segments active in it; intervals no segment covers book to
    ``engine_overhead``.  The result sums to the total window time
    exactly, because every interval is assigned in full.
    """
    phases = {phase: 0.0 for phase in PHASES}
    for win_start, win_end in windows:
        clipped = [
            (max(s, win_start), min(e, win_end), phase)
            for s, e, phase in segments
            if min(e, win_end) > max(s, win_start)
        ]
        bounds = sorted(
            {win_start, win_end}
            | {t for s, e, _p in clipped for t in (s, e)}
        )
        for left, right in zip(bounds, bounds[1:]):
            active = [p for s, e, p in clipped if s <= left and e >= right]
            width = right - left
            if not active:
                phases["engine_overhead"] += width
            else:
                share = width / len(active)
                for phase in active:
                    phases[phase] += share
    return phases


def _critical_path(spans: Sequence[SpanRecord]) -> Tuple[CriticalPathStep, ...]:
    """Deterministic longest-child walk from the task root down."""
    timed = [s for s in spans if s.end_s > s.start_s]
    if not timed:
        return ()
    by_id = {s.span_id: s for s in timed}
    children: Dict[Optional[int], List[SpanRecord]] = {}
    for s in timed:
        parent = s.parent_id if s.parent_id in by_id else None
        children.setdefault(parent, []).append(s)
    roots = children.get(None, [])
    named_roots = [s for s in roots if s.name == "task"]
    pool = named_roots if named_roots else roots
    if not pool:
        return ()
    current = max(
        pool, key=lambda s: (s.end_s - s.start_s, -s.start_s, -s.span_id)
    )
    steps: List[CriticalPathStep] = []
    depth = 0
    while current is not None:
        kids = children.get(current.span_id, [])
        child_time = sum(k.end_s - k.start_s for k in kids)
        duration = current.end_s - current.start_s
        steps.append(
            CriticalPathStep(
                name=current.name,
                span_id=current.span_id,
                depth=depth,
                duration_s=duration,
                self_s=max(0.0, duration - child_time),
            )
        )
        if not kids:
            break
        current = max(
            kids, key=lambda s: (s.end_s - s.start_s, -s.start_s, -s.span_id)
        )
        depth += 1
    return tuple(steps)


# -- directory analysis -----------------------------------------------------


def _attr(span: SpanRecord, key: str, default: object = None) -> object:
    return dict(span.attributes).get(key, default)


def _summarize_task(
    trace_id: str, spans: Sequence[SpanRecord]
) -> Optional[TaskSummary]:
    timed = [s for s in spans if s.end_s > s.start_s]
    if not timed:
        return None
    roots = [s for s in spans if s.name == "task"]
    root = roots[0] if roots else None
    segments = _innermost_segments(spans)
    phase_self = {phase: 0.0 for phase in PHASES}
    for start, end, phase in segments:
        phase_self[phase] += end - start
    return TaskSummary(
        trace_id=trace_id,
        benchmark=str(_attr(root, "benchmark", trace_id.split(":")[0])
                      if root else trace_id.split(":")[0]),
        core=int(str(_attr(root, "core", -1))) if root else -1,
        campaign=int(str(_attr(root, "campaign", -1))) if root else -1,
        start_s=min(s.start_s for s in timed),
        end_s=max(s.end_s for s in timed),
        spans=len(spans),
        errors=sum(1 for s in spans if s.status == "error"),
        watchdog_events=sum(1 for s in spans if s.name == "watchdog.recovery"),
        phase_seconds=tuple(
            (phase, phase_self[phase]) for phase in PHASES
        ),
        critical_path=_critical_path(spans),
    )


def analyze_trace_dir(directory: Union[str, Path]) -> TraceAnalysis:
    """Analyze every ``trace-*.jsonl`` file under ``directory``.

    Files load with ``strict=False`` -- a trace torn by a killed run
    still analyzes.  Raises :class:`ValueError` when the directory
    holds no trace files at all.
    """
    root = Path(directory)
    paths = sorted(root.glob("trace-*.jsonl"))
    if not paths:
        raise ValueError(f"no trace-*.jsonl files under {root}")
    by_trace: Dict[str, List[SpanRecord]] = {}
    for path in paths:
        for record in load_spans(path, strict=False):
            by_trace.setdefault(record.trace_id, []).append(record)

    session_spans = by_trace.get(SESSION_TRACE_ID, [])
    engine_runs = sorted(
        (s for s in session_spans if s.name == "engine.run"),
        key=lambda s: (s.start_s, s.span_id),
    )
    backend = "unknown"
    jobs = 1
    if engine_runs:
        windows = tuple((s.start_s, s.end_s) for s in engine_runs)
        backend = str(_attr(engine_runs[-1], "backend", "unknown"))
        jobs = int(str(_attr(engine_runs[-1], "jobs", 1)))
    else:
        # Traces recorded without the engine (or a torn session file):
        # fall back to the hull of everything observed.
        timed = [s for spans in by_trace.values() for s in spans
                 if s.end_s > s.start_s]
        if not timed:
            raise ValueError(f"no timed spans under {root}")
        windows = (
            (min(s.start_s for s in timed), max(s.end_s for s in timed)),
        )

    tasks: List[TaskSummary] = []
    all_segments: List[Tuple[float, float, str]] = []
    for trace_id in sorted(by_trace):
        if trace_id == SESSION_TRACE_ID:
            continue
        summary = _summarize_task(trace_id, by_trace[trace_id])
        if summary is None:
            continue
        tasks.append(summary)
        all_segments.extend(_innermost_segments(by_trace[trace_id]))

    phases = _fair_share_attribution(windows, all_segments)
    durations = sorted(task.duration_s for task in tasks)
    stragglers: Tuple[str, ...] = ()
    if durations:
        median = durations[len(durations) // 2]
        stragglers = tuple(
            task.trace_id
            for task in sorted(tasks, key=lambda t: -t.duration_s)
            if task.duration_s > STRAGGLER_FACTOR * median
        )
    return TraceAnalysis(
        trace_dir=str(directory),
        session_windows=windows,
        backend=backend,
        jobs=jobs,
        tasks=tuple(tasks),
        phase_seconds=tuple((phase, phases[phase]) for phase in PHASES),
        stragglers=stragglers,
    )


# -- rendering --------------------------------------------------------------


def _bar(fraction: float, width: int) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def render_analysis(analysis: TraceAnalysis, width: int = 60) -> str:
    """Deterministic terminal report: attribution, treemap, flame."""
    lines: List[str] = []
    total = analysis.total_session_s
    lines.append(f"trace analysis: {analysis.trace_dir}")
    lines.append(
        f"session: {total:.6f} s over {len(analysis.session_windows)} "
        f"engine run(s), backend {analysis.backend}, jobs {analysis.jobs}"
    )
    lines.append(
        f"tasks: {len(analysis.tasks)}, utilization "
        f"{100.0 * analysis.utilization:.1f} % of {analysis.jobs} worker(s)"
    )
    lines.append("phase attribution:")
    for phase, seconds in analysis.phase_seconds:
        fraction = seconds / total if total > 0 else 0.0
        lines.append(
            f"  {phase:<16} {seconds:>10.6f} s {100.0 * fraction:5.1f} %  "
            f"{_bar(fraction, width // 2)}"
        )
    if analysis.tasks:
        slowest = max(
            analysis.tasks, key=lambda t: (t.duration_s, t.trace_id)
        )
        longest = max(task.duration_s for task in analysis.tasks)
        lines.append("task treemap (duration-scaled):")
        for task in analysis.tasks:
            fraction = task.duration_s / longest if longest > 0 else 0.0
            flag = " *straggler*" if task.trace_id in analysis.stragglers \
                else ""
            lines.append(
                f"  {task.trace_id:<20} {task.duration_s:>10.6f} s "
                f"{_bar(fraction, width // 2)}{flag}"
            )
        lines.append(f"critical path of slowest task ({slowest.trace_id}):")
        for step in slowest.critical_path:
            lines.append(
                f"  {'  ' * step.depth}{step.name:<16} "
                f"{step.duration_s:>10.6f} s (self {step.self_s:.6f} s)"
            )
    if analysis.stragglers:
        lines.append(
            "stragglers (> {:.1f}x median): {}".format(
                STRAGGLER_FACTOR, ", ".join(analysis.stragglers)
            )
        )
    return "\n".join(lines) + "\n"


__all__ = [
    "ANALYSIS_FORMAT",
    "PHASES",
    "STRAGGLER_FACTOR",
    "CriticalPathStep",
    "TaskSummary",
    "TraceAnalysis",
    "analyze_trace_dir",
    "render_analysis",
]
