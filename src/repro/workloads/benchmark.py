"""Benchmark and program models.

A :class:`Benchmark` is a named workload with an architectural trait
vector; a :class:`Program` is a benchmark paired with one input dataset
(the paper's 26 benchmarks yield 40 programs).

**The stress identity.**  The paper's prediction works because the
performance counters carry a signal about how hard a program drives the
chip's marginal timing paths.  The model makes that linkage explicit:
a program's ``stress`` is *by definition* the following function of its
(normalised, per-instruction) trait rates::

    stress = 0.55 * (1 - stall_n)     # a busy pipeline toggles datapaths
           + 0.15 * (1 - memrd_n)     # compute-bound, not load-bound
           + 0.15 * btb_n             # deep speculation stresses fetch
           + 0.10 * branch_n
           + 0.05 * exc_n

The five rates are exactly the per-instruction forms of the five
RFE-selected events of Section 4.2 (dispatch stalls, read accesses, BTB
mispredictions, conditional/indirect branches, exceptions), so a linear
model over the PMU counters can in principle recover the stress -- and
with it the Vmin/severity behaviour -- which is the paper's empirical
finding.  Suite construction works backwards: given a benchmark's
target stress and its class trait template, the two most pliable rates
(dispatch stalls, then exceptions) are solved to satisfy the identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from ..errors import ConfigurationError
from ..faults.models import FunctionalUnit

# Normalisation ranges of the five stress-relevant rates.
_STALL_RANGE = (0.05, 0.60)       # dispatch_stall_ratio
_MEMRD_RANGE = (0.10, 0.35)       # load_ratio
_BTB_RANGE = (0.0, 0.020)         # btb_misp_rate
_BRANCH_RANGE = (0.05, 0.25)      # branch_ratio
_EXC_RANGE = (0.0, 0.50)          # exception_rate (per kilo-instruction)

_STRESS_WEIGHTS = {
    "stall": 0.55,
    "memrd": 0.15,
    "btb": 0.15,
    "branch": 0.10,
    "exc": 0.05,
}


def _norm(value: float, lo_hi: Tuple[float, float]) -> float:
    lo, hi = lo_hi
    return min(1.0, max(0.0, (value - lo) / (hi - lo)))


def _denorm(norm: float, lo_hi: Tuple[float, float]) -> float:
    lo, hi = lo_hi
    return lo + min(1.0, max(0.0, norm)) * (hi - lo)


@dataclass(frozen=True)
class WorkloadTraits:
    """Architectural trait vector of one program.

    Rates are per instruction unless stated; ``instructions`` is the
    total dynamic instruction count of one full execution.
    """

    instructions: float = 2.0e11
    ipc: float = 1.2
    load_ratio: float = 0.22
    store_ratio: float = 0.10
    fp_ratio: float = 0.05
    simd_ratio: float = 0.01
    branch_ratio: float = 0.15
    branch_misp_rate: float = 0.03
    btb_misp_rate: float = 0.006
    l1d_miss_rate: float = 0.03
    l1i_mpki: float = 1.0
    l2_miss_rate: float = 0.25
    l3_miss_rate: float = 0.30
    dtlb_mpki: float = 0.8
    itlb_mpki: float = 0.1
    dispatch_stall_ratio: float = 0.30
    exception_rate: float = 0.10
    prefetch_ratio: float = 0.10
    unaligned_ratio: float = 0.002

    def as_dict(self) -> Dict[str, float]:
        """Mapping view consumed by the PMU counter synthesis."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def __post_init__(self) -> None:
        for name in ("instructions", "ipc"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        for name in (
            "load_ratio", "store_ratio", "fp_ratio", "simd_ratio",
            "branch_ratio", "branch_misp_rate", "btb_misp_rate",
            "l1d_miss_rate", "l2_miss_rate", "l3_miss_rate",
            "dispatch_stall_ratio", "prefetch_ratio", "unaligned_ratio",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be within [0, 1], got {value}")


def _fixed_contribution(traits: WorkloadTraits) -> float:
    """Stress contribution of the three class-template rates."""
    w = _STRESS_WEIGHTS
    return (
        w["memrd"] * (1.0 - _norm(traits.load_ratio, _MEMRD_RANGE))
        + w["btb"] * _norm(traits.btb_misp_rate, _BTB_RANGE)
        + w["branch"] * _norm(traits.branch_ratio, _BRANCH_RANGE)
    )


def stress_from_traits(traits: WorkloadTraits) -> float:
    """The stress identity: timing-path stress from the trait rates."""
    stall_n = _norm(traits.dispatch_stall_ratio, _STALL_RANGE)
    memrd_n = _norm(traits.load_ratio, _MEMRD_RANGE)
    btb_n = _norm(traits.btb_misp_rate, _BTB_RANGE)
    branch_n = _norm(traits.branch_ratio, _BRANCH_RANGE)
    exc_n = _norm(traits.exception_rate, _EXC_RANGE)
    w = _STRESS_WEIGHTS
    return (
        w["stall"] * (1.0 - stall_n)
        + w["memrd"] * (1.0 - memrd_n)
        + w["btb"] * btb_n
        + w["branch"] * branch_n
        + w["exc"] * exc_n
    )


def latent_stress_for(name: str, amplitude: float = 0.45) -> float:
    """Deterministic per-program *latent* stress component.

    Section 4.3.1's empirical finding is that performance counters
    predict Vmin barely better than the naive mean (R-squared near 0)
    even though they predict severity very well.  That is only possible
    if part of a program's timing-path stress is invisible to the
    counters -- data-dependent switching patterns that no architectural
    event captures.  This helper models that hidden part: a hash-derived
    offset in ``[-amplitude, +amplitude]`` that shifts the program's
    Vmin but leaves its counter profile untouched.
    """
    digest = 0
    for char in name:
        digest = (digest * 131 + ord(char)) % 100_003
    return (digest / 100_003 * 2.0 - 1.0) * amplitude


def solve_traits_for_stress(
    base: WorkloadTraits, stress: float, clamp: bool = False
) -> WorkloadTraits:
    """Adjust the pliable rates of a trait template to hit a stress.

    Dispatch-stall ratio absorbs as much of the residual as it can,
    the exception rate takes the remainder; the other three rates keep
    their class-template values so the suite stays architecturally
    diverse.  Raises when the target is unreachable from the template
    (keeps suite definitions honest) unless ``clamp`` is set, in which
    case the nearest reachable stress is used (needed when a latent
    offset pushes the visible stress outside the template's range).
    """
    if not 0.0 <= stress <= 1.0:
        if not clamp:
            raise ConfigurationError("stress must be within [0, 1]")
        stress = min(1.0, max(0.0, stress))
    w = _STRESS_WEIGHTS
    fixed = (
        w["memrd"] * (1.0 - _norm(base.load_ratio, _MEMRD_RANGE))
        + w["btb"] * _norm(base.btb_misp_rate, _BTB_RANGE)
        + w["branch"] * _norm(base.branch_ratio, _BRANCH_RANGE)
    )
    residual = stress - fixed
    if not clamp and (residual < -1e-9 or residual > w["stall"] + w["exc"] + 1e-9):
        raise ConfigurationError(
            f"stress {stress:.2f} unreachable from template "
            f"(fixed contribution {fixed:.2f})"
        )
    residual = min(max(residual, 0.0), w["stall"] + w["exc"])
    stall_term = min(residual, w["stall"])
    exc_term = residual - stall_term
    stall_n = 1.0 - stall_term / w["stall"]
    exc_n = exc_term / w["exc"]
    return replace(
        base,
        dispatch_stall_ratio=_denorm(stall_n, _STALL_RANGE),
        exception_rate=_denorm(exc_n, _EXC_RANGE),
    )


def _default_unit_stress(traits: WorkloadTraits) -> Dict[FunctionalUnit, float]:
    """Relative per-unit exercise derived from the instruction mix."""
    compute = traits.fp_ratio + traits.simd_ratio
    mem = traits.load_ratio + traits.store_ratio
    return {
        FunctionalUnit.FPU: min(1.0, compute / 0.35),
        FunctionalUnit.ALU: min(1.0, (1.0 - compute - mem) / 0.5),
        FunctionalUnit.LSU: min(1.0, mem / 0.4),
        FunctionalUnit.CONTROL: min(1.0, traits.branch_ratio / 0.2),
        FunctionalUnit.L1_SRAM: min(1.0, mem / 0.35),
        FunctionalUnit.L2_SRAM: min(1.0, 8.0 * traits.l1d_miss_rate),
        FunctionalUnit.L3_SRAM: min(1.0, 8.0 * traits.l1d_miss_rate * traits.l2_miss_rate + 0.1),
    }


@dataclass(frozen=True)
class Benchmark:
    """One named workload.

    ``stress`` drives the Vmin anchors; ``latent_stress`` is the part
    of it that is invisible to the performance counters (see
    :func:`latent_stress_for`).  The *visible* remainder is validated
    against the stress identity of the traits (the two views must agree
    within rounding) so a suite definition cannot silently decouple
    counters from Vmin behaviour.
    """

    name: str
    suite: str
    description: str
    traits: WorkloadTraits
    stress: float
    smoothness: float
    latent_stress: float = 0.0
    unit_stress: Mapping[FunctionalUnit, float] = field(default_factory=dict)
    input_sets: Tuple[str, ...] = ("ref",)

    def __post_init__(self) -> None:
        if not 0.0 <= self.stress <= 1.0:
            raise ConfigurationError("stress must be within [0, 1]")
        if not 0.0 <= self.smoothness <= 1.0:
            raise ConfigurationError("smoothness must be within [0, 1]")
        if not -0.6 <= self.latent_stress <= 0.6:
            raise ConfigurationError("latent_stress must be within [-0.6, 0.6]")
        if not self.input_sets:
            raise ConfigurationError("a benchmark needs at least one input set")
        implied = stress_from_traits(self.traits)
        # The traits can only express stresses within the template's
        # feasible band [fixed, fixed + 0.6]; the visible stress is
        # clamped into it before comparing (large latent offsets clip).
        fixed = _fixed_contribution(self.traits)
        expressible = min(
            max(self.visible_stress, fixed),
            fixed + _STRESS_WEIGHTS["stall"] + _STRESS_WEIGHTS["exc"],
        )
        if abs(implied - expressible) > 0.02:
            raise ConfigurationError(
                f"{self.name}: expressible visible stress {expressible:.3f} does "
                f"not match the trait-implied stress {implied:.3f}"
            )
        if not self.unit_stress:
            object.__setattr__(
                self, "unit_stress", _default_unit_stress(self.traits)
            )

    @property
    def visible_stress(self) -> float:
        """The counter-observable part of the stress."""
        return min(1.0, max(0.0, self.stress - self.latent_stress))

    def programs(self) -> Tuple["Program", ...]:
        """All (benchmark, input) programs of this benchmark."""
        return tuple(
            Program(benchmark=self, input_set=name) for name in self.input_sets
        )


@dataclass(frozen=True)
class Program:
    """A benchmark paired with one input dataset.

    Inputs perturb the dynamic behaviour slightly -- different data,
    same code -- modelled as a small deterministic trait perturbation
    derived from the input name.
    """

    benchmark: Benchmark
    input_set: str

    def __post_init__(self) -> None:
        if self.input_set not in self.benchmark.input_sets:
            raise ConfigurationError(
                f"{self.benchmark.name} has no input set {self.input_set!r}"
            )

    @property
    def name(self) -> str:
        """Canonical program name, e.g. ``"gcc/200"``."""
        if self.input_set == "ref":
            return self.benchmark.name
        return f"{self.benchmark.name}/{self.input_set}"

    def _perturbation(self) -> float:
        """Deterministic input-specific offset in [-1, 1]."""
        if self.input_set == "ref":
            return 0.0
        digest = 0
        for char in f"{self.benchmark.name}:{self.input_set}":
            digest = (digest * 131 + ord(char)) % 10_007
        return digest / 10_007 * 2.0 - 1.0

    @property
    def stress(self) -> float:
        """Program stress: the benchmark's, nudged by the input."""
        return min(1.0, max(0.0, self.benchmark.stress + 0.03 * self._perturbation()))

    @property
    def smoothness(self) -> float:
        return self.benchmark.smoothness

    @property
    def unit_stress(self) -> Mapping[FunctionalUnit, float]:
        return self.benchmark.unit_stress

    @property
    def traits(self) -> WorkloadTraits:
        """Trait vector with the input perturbation folded in.

        The perturbation is applied through the stress identity so the
        counters move consistently with the Vmin behaviour (minus the
        benchmark's latent component, which counters never see).
        """
        if self.input_set == "ref":
            return self.benchmark.traits
        visible = min(1.0, max(0.0, self.stress - self.benchmark.latent_stress))
        return solve_traits_for_stress(self.benchmark.traits, visible, clamp=True)

    def trait_dict(self) -> Dict[str, float]:
        return self.traits.as_dict()
