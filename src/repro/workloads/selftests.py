"""Component-focused self-tests (Section 3.4).

To explain why the X-Gene 2 shows SDCs before lone corrected errors,
the paper's authors wrote self-tests that stress one component each:

* **cache tests** completely fill a cache array and flip all bits of
  each block, looking for cell bit errors;
* **ALU/FPU tests** perform many different concurrent operations with
  random values to stress different timing paths.

Their observation -- cache tests crash at much *lower* voltages than
the ALU/FPU tests produce SDCs -- is what identifies the chip as
timing-path-limited rather than SRAM-limited.  These models reproduce
that: the pipeline tests carry high timing stress (high Vmin, SDCs
first), the cache tests carry almost none (their anchors sit far lower
and the first observable event is the crash or an ECC event).
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import UnknownBenchmarkError
from ..faults.models import FunctionalUnit
from .benchmark import Benchmark, WorkloadTraits, solve_traits_for_stress


def _selftest(
    name: str,
    description: str,
    stress: float,
    smoothness: float,
    unit_stress: Dict[FunctionalUnit, float],
    *,
    load: float,
    branch: float,
    btb: float,
    **trait_overrides,
) -> Benchmark:
    template = WorkloadTraits(
        load_ratio=load,
        store_ratio=round(load * 0.45, 4),
        branch_ratio=branch,
        btb_misp_rate=btb,
        **trait_overrides,
    )
    traits = solve_traits_for_stress(template, stress)
    return Benchmark(
        name=name,
        suite="selftest",
        description=description,
        traits=traits,
        stress=stress,
        smoothness=smoothness,
        unit_stress=unit_stress,
    )


def _build() -> Dict[str, Benchmark]:
    tests = [
        _selftest(
            "alu-stress",
            "concurrent random integer operations across all ALU paths",
            stress=0.95, smoothness=0.30,
            unit_stress={
                FunctionalUnit.ALU: 1.0, FunctionalUnit.FPU: 0.05,
                FunctionalUnit.LSU: 0.10, FunctionalUnit.CONTROL: 0.30,
                FunctionalUnit.L1_SRAM: 0.05, FunctionalUnit.L2_SRAM: 0.02,
                FunctionalUnit.L3_SRAM: 0.02,
            },
            load=0.10, branch=0.22, btb=0.018, fp_ratio=0.0,
            ipc=2.4,
        ),
        _selftest(
            "fpu-stress",
            "concurrent random floating-point operations across FPU paths",
            stress=1.00, smoothness=0.30,
            unit_stress={
                FunctionalUnit.ALU: 0.20, FunctionalUnit.FPU: 1.0,
                FunctionalUnit.LSU: 0.10, FunctionalUnit.CONTROL: 0.30,
                FunctionalUnit.L1_SRAM: 0.05, FunctionalUnit.L2_SRAM: 0.02,
                FunctionalUnit.L3_SRAM: 0.02,
            },
            load=0.10, branch=0.25, btb=0.020, fp_ratio=0.60,
            ipc=2.2,
        ),
        _selftest(
            "l1-march",
            "march test: fill L1, flip all bits of each block, verify",
            stress=0.05, smoothness=0.20,
            unit_stress={
                FunctionalUnit.ALU: 0.10, FunctionalUnit.FPU: 0.0,
                FunctionalUnit.LSU: 0.9, FunctionalUnit.CONTROL: 0.10,
                FunctionalUnit.L1_SRAM: 1.0, FunctionalUnit.L2_SRAM: 0.10,
                FunctionalUnit.L3_SRAM: 0.05,
            },
            load=0.34, branch=0.05, btb=0.0005, fp_ratio=0.0,
            ipc=0.8, l1d_miss_rate=0.0,
        ),
        _selftest(
            "l2-march",
            "march test over the PMD's L2 array",
            stress=0.04, smoothness=0.20,
            unit_stress={
                FunctionalUnit.ALU: 0.10, FunctionalUnit.FPU: 0.0,
                FunctionalUnit.LSU: 0.9, FunctionalUnit.CONTROL: 0.10,
                FunctionalUnit.L1_SRAM: 0.3, FunctionalUnit.L2_SRAM: 1.0,
                FunctionalUnit.L3_SRAM: 0.10,
            },
            load=0.34, branch=0.05, btb=0.0005, fp_ratio=0.0,
            ipc=0.5, l1d_miss_rate=0.9,
        ),
        _selftest(
            "l3-march",
            "march test over the shared L3 array",
            stress=0.03, smoothness=0.20,
            unit_stress={
                FunctionalUnit.ALU: 0.10, FunctionalUnit.FPU: 0.0,
                FunctionalUnit.LSU: 0.9, FunctionalUnit.CONTROL: 0.10,
                FunctionalUnit.L1_SRAM: 0.2, FunctionalUnit.L2_SRAM: 0.4,
                FunctionalUnit.L3_SRAM: 1.0,
            },
            load=0.34, branch=0.05, btb=0.0005, fp_ratio=0.0,
            ipc=0.3, l1d_miss_rate=0.9, l2_miss_rate=0.9,
        ),
    ]
    return {test.name: test for test in tests}


#: All self-tests, keyed by name.
SELF_TESTS: Dict[str, Benchmark] = _build()


def self_test(name: str) -> Benchmark:
    """Look up a self-test by name."""
    try:
        return SELF_TESTS[name]
    except KeyError:
        raise UnknownBenchmarkError(f"unknown self-test {name!r}") from None


def pipeline_tests() -> List[Benchmark]:
    """The ALU/FPU stress tests."""
    return [SELF_TESTS["alu-stress"], SELF_TESTS["fpu-stress"]]


def cache_tests() -> List[Benchmark]:
    """The cache march tests."""
    return [SELF_TESTS["l1-march"], SELF_TESTS["l2-march"], SELF_TESTS["l3-march"]]
