"""The synthetic SPEC CPU2006 suite.

29 benchmarks; three ("gamess", "tonto", "wrf") are listed but excluded,
mirroring the paper's *"26 benchmarks ... (3 of them could not run
correctly)"*.  With their input datasets the 26 usable benchmarks yield
the 40 programs of the Section-4 prediction study.

The ten benchmarks of Figures 3-5 carry the stress/smoothness values
that reproduce the published anchors exactly (see
:mod:`repro.data.calibration`):

=========== ======= ========== ============================
benchmark   stress  smoothness TTT robust-core Vmin @2.4GHz
=========== ======= ========== ============================
bwaves      0.60    1.00       875 mV (widest unsafe band)
cactusADM   0.40    0.60       870 mV
dealII      0.20    0.20       865 mV
gromacs     0.02    0.00       860 mV
leslie3d    0.80    0.60       880 mV (Section-5 example)
mcf         0.05    0.00       860 mV
milc        0.40    0.40       870 mV
namd        0.20    0.20       865 mV
soplex      0.60    0.60       875 mV
zeusmp      1.00    0.80       885 mV (defines the chip Vmin)
=========== ======= ========== ============================

Trait templates are flavoured by benchmark class (floating-point,
integer, memory-bound); the dispatch-stall and exception rates are then
solved from the stress identity (:func:`repro.workloads.benchmark.
solve_traits_for_stress`) so PMU counters and Vmin behaviour stay
coupled, which is the property the paper's predictor exploits.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import UnknownBenchmarkError
from .benchmark import (
    Benchmark,
    Program,
    WorkloadTraits,
    latent_stress_for,
    solve_traits_for_stress,
)

#: Benchmarks the paper could not run; listed for completeness, never
#: returned by :func:`all_programs`.
EXCLUDED_BENCHMARKS: Tuple[str, ...] = ("gamess", "tonto", "wrf")

#: The ten benchmarks of the Figure 3/4/5 characterization sweeps, in
#: figure order.
FIGURE_BENCHMARKS: Tuple[str, ...] = (
    "bwaves", "cactusADM", "dealII", "gromacs", "leslie3d",
    "mcf", "milc", "namd", "soplex", "zeusmp",
)


def _bench(
    name: str,
    suite: str,
    description: str,
    stress: float,
    smoothness: float,
    *,
    load: float,
    branch: float,
    btb: float,
    fp: float,
    ipc: float,
    inputs: Tuple[str, ...] = ("ref",),
    instructions: float = 2.0e11,
    **extra,
) -> Benchmark:
    template = WorkloadTraits(
        instructions=instructions,
        ipc=ipc,
        load_ratio=load,
        store_ratio=round(load * 0.45, 4),
        fp_ratio=fp,
        branch_ratio=branch,
        btb_misp_rate=btb,
        **extra,
    )
    latent = latent_stress_for(name)
    visible = min(1.0, max(0.0, stress - latent))
    traits = solve_traits_for_stress(template, visible, clamp=True)
    return Benchmark(
        name=name,
        suite=suite,
        description=description,
        traits=traits,
        stress=stress,
        smoothness=smoothness,
        latent_stress=latent,
        input_sets=inputs,
    )


def _build_suite() -> Dict[str, Benchmark]:
    table = [
        # --- the ten figure benchmarks (CFP2006 unless noted) -------------
        _bench("bwaves", "CFP2006", "blast-wave fluid dynamics (Fortran)",
               0.60, 1.00, load=0.18, branch=0.08, btb=0.008, fp=0.45,
               ipc=1.5, simd_ratio=0.05, l1d_miss_rate=0.035,
               instructions=3.0e11),
        _bench("cactusADM", "CFP2006", "numerical relativity, Einstein equations",
               0.40, 0.60, load=0.22, branch=0.07, btb=0.005, fp=0.40,
               ipc=1.3, l1d_miss_rate=0.04),
        _bench("dealII", "CFP2006", "adaptive finite elements (C++)",
               0.20, 0.20, load=0.26, branch=0.14, btb=0.004, fp=0.30,
               ipc=1.1),
        _bench("gromacs", "CFP2006", "molecular dynamics",
               0.02, 0.00, load=0.34, branch=0.05, btb=0.0005, fp=0.35,
               ipc=0.9, l1d_miss_rate=0.01),
        _bench("leslie3d", "CFP2006", "large-eddy simulation (Fortran)",
               0.80, 0.60, load=0.12, branch=0.13, btb=0.013, fp=0.48,
               ipc=1.7, simd_ratio=0.06, instructions=2.5e11),
        _bench("mcf", "CINT2006", "single-depot vehicle scheduling (memory bound)",
               0.05, 0.00, load=0.34, branch=0.08, btb=0.001, fp=0.02,
               ipc=0.4, l1d_miss_rate=0.12, l2_miss_rate=0.55,
               l3_miss_rate=0.60, dtlb_mpki=8.0),
        _bench("milc", "CFP2006", "lattice quantum chromodynamics",
               0.40, 0.40, load=0.28, branch=0.09, btb=0.006, fp=0.35,
               ipc=1.0, l1d_miss_rate=0.06),
        _bench("namd", "CFP2006", "biomolecular simulation (C++)",
               0.20, 0.20, load=0.24, branch=0.10, btb=0.003, fp=0.42,
               ipc=1.4),
        _bench("soplex", "CFP2006", "simplex linear-programming solver",
               0.60, 0.60, load=0.20, branch=0.16, btb=0.009, fp=0.15,
               ipc=1.0, l1d_miss_rate=0.05, inputs=("ref", "pds-50")),
        _bench("zeusmp", "CFP2006", "astrophysical magnetohydrodynamics",
               1.00, 0.80, load=0.10, branch=0.25, btb=0.020, fp=0.40,
               ipc=1.8, simd_ratio=0.04, instructions=2.8e11),
        # --- remaining CINT2006 ---------------------------------------------
        _bench("perlbench", "CINT2006", "Perl interpreter workloads",
               0.45, 0.40, load=0.24, branch=0.21, btb=0.010, fp=0.005,
               ipc=1.2, inputs=("ref", "splitmail"), l1i_mpki=8.0,
               itlb_mpki=1.2),
        _bench("bzip2", "CINT2006", "block-sorting compression",
               0.30, 0.30, load=0.26, branch=0.17, btb=0.006, fp=0.0,
               ipc=1.1, inputs=("ref", "chicken", "liberty", "text")),
        _bench("gcc", "CINT2006", "C compiler",
               0.50, 0.50, load=0.20, branch=0.20, btb=0.012, fp=0.0,
               ipc=1.0, inputs=("ref", "166", "200", "scilab"),
               l1i_mpki=12.0, itlb_mpki=2.0),
        _bench("gobmk", "CINT2006", "Go-playing AI",
               0.35, 0.30, load=0.22, branch=0.22, btb=0.011, fp=0.0,
               ipc=0.9, inputs=("ref", "nngs", "score2"),
               branch_misp_rate=0.08),
        _bench("hmmer", "CINT2006", "profile HMM protein search",
               0.55, 0.40, load=0.16, branch=0.10, btb=0.004, fp=0.01,
               ipc=1.9, inputs=("ref", "retro")),
        _bench("sjeng", "CINT2006", "chess-playing AI",
               0.40, 0.30, load=0.21, branch=0.21, btb=0.012, fp=0.0,
               ipc=1.0, branch_misp_rate=0.07),
        _bench("libquantum", "CINT2006", "quantum computer simulation",
               0.25, 0.20, load=0.30, branch=0.13, btb=0.002, fp=0.01,
               ipc=0.8, l1d_miss_rate=0.08, l2_miss_rate=0.50),
        _bench("h264ref", "CINT2006", "H.264 video encoding",
               0.50, 0.45, load=0.25, branch=0.12, btb=0.006, fp=0.02,
               ipc=1.5, inputs=("ref", "sss_main"), simd_ratio=0.08),
        _bench("omnetpp", "CINT2006", "discrete-event network simulation",
               0.15, 0.10, load=0.31, branch=0.15, btb=0.003, fp=0.01,
               ipc=0.6, l1d_miss_rate=0.07, dtlb_mpki=4.0),
        _bench("astar", "CINT2006", "path-finding AI",
               0.20, 0.15, load=0.29, branch=0.16, btb=0.004, fp=0.01,
               ipc=0.7, inputs=("ref", "rivers"), l1d_miss_rate=0.06),
        _bench("xalancbmk", "CINT2006", "XSLT processor",
               0.30, 0.25, load=0.27, branch=0.19, btb=0.008, fp=0.0,
               ipc=0.9, l1i_mpki=10.0),
        # --- remaining CFP2006 --------------------------------------------------
        _bench("povray", "CFP2006", "ray tracing",
               0.65, 0.50, load=0.15, branch=0.14, btb=0.009, fp=0.35,
               ipc=1.6),
        _bench("calculix", "CFP2006", "structural mechanics finite elements",
               0.55, 0.45, load=0.17, branch=0.08, btb=0.007, fp=0.40,
               ipc=1.4),
        _bench("GemsFDTD", "CFP2006", "computational electromagnetics",
               0.35, 0.40, load=0.28, branch=0.06, btb=0.003, fp=0.45,
               ipc=1.0, l1d_miss_rate=0.07, l2_miss_rate=0.45),
        _bench("lbm", "CFP2006", "lattice Boltzmann fluid dynamics",
               0.10, 0.10, load=0.33, branch=0.06, btb=0.001, fp=0.40,
               ipc=0.7, l1d_miss_rate=0.10, l2_miss_rate=0.60,
               l3_miss_rate=0.70),
        _bench("sphinx3", "CFP2006", "speech recognition",
               0.45, 0.35, load=0.23, branch=0.11, btb=0.008, fp=0.30,
               ipc=1.2, inputs=("ref", "an4")),
    ]
    return {bench.name: bench for bench in table}


#: All usable benchmarks, keyed by name.
SPEC2006_SUITE: Dict[str, Benchmark] = _build_suite()

_PROGRAMS: Dict[str, Program] = {
    prog.name: prog
    for bench in SPEC2006_SUITE.values()
    for prog in bench.programs()
}


def benchmark(name: str) -> Benchmark:
    """Look up a benchmark by name."""
    try:
        return SPEC2006_SUITE[name]
    except KeyError:
        if name in EXCLUDED_BENCHMARKS:
            raise UnknownBenchmarkError(
                f"{name!r} is one of the three benchmarks that could not "
                f"run in the study and is excluded from the suite"
            ) from None
        raise UnknownBenchmarkError(f"unknown benchmark {name!r}") from None


def program(name: str) -> Program:
    """Look up a program (``"bench"`` or ``"bench/input"``) by name."""
    try:
        return _PROGRAMS[name]
    except KeyError:
        raise UnknownBenchmarkError(f"unknown program {name!r}") from None


def figure_benchmarks() -> List[Benchmark]:
    """The ten Figure-3/4/5 benchmarks, in figure order."""
    return [benchmark(name) for name in FIGURE_BENCHMARKS]


def all_programs() -> List[Program]:
    """The 40 programs of the prediction study, in stable order."""
    return [
        _PROGRAMS[name] for name in sorted(_PROGRAMS)
    ]
