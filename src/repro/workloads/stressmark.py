"""di/dt stressmark generation (related work, Section 7).

Ketkar & Chiprout and Kim et al. (AUDIT) generate workloads that
maximise supply droop to find a machine's worst-case margin; the
characterization then only needs the stressmark instead of hoping some
benchmark excites the worst droop.  This module reproduces the idea on
top of the library's droop model: a deterministic local search over
workload-trait space for the configuration that maximises
:meth:`repro.hardware.dynamics.SupplyDroopModel.droop_mv`.

The search operates on the same :class:`SyntheticWorkloadGenerator`
substrate as every other generated workload, so the resulting
stressmark can be characterized, profiled and scheduled like any
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigurationError
from ..hardware.dynamics import SupplyDroopModel
from ..units import FREQ_MAX_MHZ
from .benchmark import Benchmark, WorkloadTraits, solve_traits_for_stress


@dataclass(frozen=True)
class StressmarkResult:
    """Outcome of a stressmark search."""

    workload: Benchmark
    droop_mv: float
    iterations: int
    #: Droop of the best suite benchmark, for comparison.
    reference_droop_mv: float

    @property
    def droop_gain(self) -> float:
        """How much worse the stressmark droops than the worst
        benchmark (>= 1 when the search succeeded)."""
        if self.reference_droop_mv <= 0:
            return float("inf")
        return self.droop_mv / self.reference_droop_mv


def _droop_of(traits: WorkloadTraits, droop_model: SupplyDroopModel,
              freq_mhz: int) -> float:
    return droop_model.droop_mv(traits, freq_mhz)


def generate_didt_stressmark(
    droop_model: Optional[SupplyDroopModel] = None,
    freq_mhz: int = FREQ_MAX_MHZ,
    iterations: int = 200,
    step: float = 0.05,
) -> StressmarkResult:
    """Hill-climb the trait space toward maximum droop.

    Coordinates searched: IPC and FP/SIMD intensity (the di/dt
    drivers).  The search is deterministic: fixed starting point, fixed
    coordinate order, accept-if-better.
    """
    if iterations <= 0:
        raise ConfigurationError("iterations must be positive")
    if step <= 0:
        raise ConfigurationError("step must be positive")
    droop_model = droop_model or SupplyDroopModel()

    # Coordinates: (ipc, fp_ratio, simd_ratio) with physical bounds.
    bounds = {"ipc": (0.3, 2.4), "fp_ratio": (0.0, 0.5),
              "simd_ratio": (0.0, 0.08)}
    current = {"ipc": 1.2, "fp_ratio": 0.2, "simd_ratio": 0.02}

    def traits_of(point) -> WorkloadTraits:
        template = WorkloadTraits(
            ipc=point["ipc"],
            fp_ratio=round(point["fp_ratio"], 4),
            simd_ratio=round(point["simd_ratio"], 4),
            load_ratio=0.12, branch_ratio=0.10, btb_misp_rate=0.008,
        )
        # Full timing stress: a stressmark exercises the datapath hard.
        return solve_traits_for_stress(template, 1.0, clamp=True)

    best_traits = traits_of(current)
    best_droop = _droop_of(best_traits, droop_model, freq_mhz)
    used = 0
    for iteration in range(iterations):
        used = iteration + 1
        improved = False
        for key in ("ipc", "fp_ratio", "simd_ratio"):
            lo, hi = bounds[key]
            span = hi - lo
            for direction in (+1.0, -1.0):
                candidate = dict(current)
                candidate[key] = min(
                    hi, max(lo, candidate[key] + direction * step * span))
                traits = traits_of(candidate)
                droop = _droop_of(traits, droop_model, freq_mhz)
                if droop > best_droop + 1e-12:
                    current = candidate
                    best_traits = traits
                    best_droop = droop
                    improved = True
        if not improved:
            break

    reference = _reference_droop(droop_model, freq_mhz)
    workload = Benchmark(
        name="didt-stressmark",
        suite="stressmark",
        description="generated worst-case di/dt droop workload",
        traits=best_traits,
        stress=1.0,
        smoothness=0.3,
    )
    return StressmarkResult(
        workload=workload,
        droop_mv=best_droop,
        iterations=used,
        reference_droop_mv=reference,
    )


def _reference_droop(droop_model: SupplyDroopModel, freq_mhz: int) -> float:
    """Worst droop among the SPEC suite (the 'hope a benchmark finds
    it' baseline the stressmark papers argue against)."""
    from .spec2006 import SPEC2006_SUITE

    return max(
        droop_model.droop_mv(bench.traits, freq_mhz)
        for bench in SPEC2006_SUITE.values()
    )
