"""Randomized synthetic workload generation.

The fixed SPEC suite reproduces the paper; the generator produces
*additional* workloads with the same internal consistency (traits that
honour the stress identity), which the extension studies use for:

* training-set augmentation for the predictor,
* stress-testing the scheduler with workload mixes the paper never ran,
* property-based tests over the whole workload space.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from .benchmark import (
    Benchmark,
    WorkloadTraits,
    solve_traits_for_stress,
    stress_from_traits,
)


class SyntheticWorkloadGenerator:
    """Draws internally consistent random benchmarks.

    Each draw samples a target stress and a class-flavoured trait
    template, then solves the template's pliable rates to satisfy the
    stress identity exactly -- so generated workloads behave like suite
    members everywhere in the library.
    """

    def __init__(self, seed: int = 0) -> None:
        # reprolint: disable=RPR011 -- the literal default is the documented generator seed; campaigns pass SeedSequence-derived values
        self._rng = np.random.default_rng(seed)
        self._counter = 0

    def draw(
        self,
        stress: Optional[float] = None,
        smoothness: Optional[float] = None,
    ) -> Benchmark:
        """Generate one benchmark; stress/smoothness may be pinned."""
        rng = self._rng
        if stress is None:
            stress = float(rng.uniform(0.0, 1.0))
        if not 0.0 <= stress <= 1.0:
            raise ConfigurationError("stress must be within [0, 1]")
        if smoothness is None:
            smoothness = float(rng.uniform(0.0, 1.0))

        # Sample the three fixed stress-relevant rates such that their
        # combined contribution stays solvable for this stress
        # (contribution <= stress and >= stress - 0.6).  Their caps are
        # memrd 0.15, btb 0.15, branch 0.10 (sum 0.40), so any target in
        # [max(0, stress - 0.6), min(0.40, stress)] is allocatable.
        lo_needed = max(0.0, stress - 0.60)
        hi_allowed = min(0.40, stress)
        fixed_target = float(rng.uniform(lo_needed, hi_allowed))
        caps = {"memrd": 0.15, "btb": 0.15, "branch": 0.10}
        weights = rng.dirichlet([2.0, 2.0, 2.0])
        parts = {name: 0.0 for name in caps}
        remaining = fixed_target
        # Proportional allocation, then greedy spill into leftover caps.
        for name, weight in zip(caps, weights):
            parts[name] = min(caps[name], fixed_target * float(weight))
            remaining -= parts[name]
        for name in caps:
            if remaining <= 1e-12:
                break
            room = caps[name] - parts[name]
            take = min(room, remaining)
            parts[name] += take
            remaining -= take
        memrd_part, btb_part, branch_part = parts["memrd"], parts["btb"], parts["branch"]

        load_ratio = 0.35 - (memrd_part / 0.15) * 0.25
        btb_rate = (btb_part / 0.15) * 0.020
        branch_ratio = 0.05 + (branch_part / 0.10) * 0.20

        fp_ratio = float(rng.uniform(0.0, 0.5))
        template = WorkloadTraits(
            instructions=float(rng.uniform(0.5e11, 5e11)),
            ipc=float(rng.uniform(0.4, 2.2)),
            load_ratio=round(load_ratio, 4),
            store_ratio=round(load_ratio * 0.45, 4),
            fp_ratio=round(fp_ratio, 4),
            simd_ratio=round(float(rng.uniform(0.0, 0.08)), 4),
            branch_ratio=round(branch_ratio, 4),
            branch_misp_rate=round(float(rng.uniform(0.01, 0.08)), 4),
            btb_misp_rate=round(btb_rate, 5),
            l1d_miss_rate=round(float(rng.uniform(0.005, 0.12)), 4),
            l1i_mpki=round(float(rng.uniform(0.1, 12.0)), 2),
            l2_miss_rate=round(float(rng.uniform(0.1, 0.6)), 3),
            l3_miss_rate=round(float(rng.uniform(0.1, 0.7)), 3),
            dtlb_mpki=round(float(rng.uniform(0.05, 8.0)), 2),
            itlb_mpki=round(float(rng.uniform(0.01, 2.0)), 2),
            prefetch_ratio=round(float(rng.uniform(0.0, 0.25)), 3),
            unaligned_ratio=round(float(rng.uniform(0.0, 0.01)), 4),
        )
        traits = solve_traits_for_stress(template, stress)
        implied = stress_from_traits(traits)
        self._counter += 1
        return Benchmark(
            name=f"synth-{self._counter:04d}",
            suite="synthetic",
            description="generated workload",
            traits=traits,
            stress=round(implied, 6),
            smoothness=round(float(smoothness), 6),
        )

    def draw_many(self, count: int, **kwargs) -> List[Benchmark]:
        """Generate several benchmarks."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        return [self.draw(**kwargs) for _ in range(count)]
