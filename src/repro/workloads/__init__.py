"""Workload models: the synthetic SPEC CPU2006 suite and self-tests.

The paper characterizes with SPEC CPU2006 (10 benchmarks for the full
voltage sweeps, 26 benchmarks / 40 program+input pairs for the
prediction study) plus hand-written self-tests that stress individual
components (Section 3.4).  SPEC binaries and their inputs are licensed
material and in any case meaningless to a behavioural simulator, so
each program is modelled by what the study actually consumes:

* a 19-dimensional architectural *trait* vector that synthesises its
  101-event PMU profile (:mod:`repro.data.counters`);
* a scalar ``stress`` in [0, 1]: how hard the program drives the
  critical timing paths, which (through the calibration anchors) sets
  its per-core Vmin;
* a scalar ``smoothness`` in [0, 1]: how wide/gradual its unsafe region
  is (bwaves at 1.0 has the paper's widest, smoothest severity ramp);
* a per-functional-unit relative stress vector shaping the effect mix.
"""

from .benchmark import Benchmark, Program, WorkloadTraits, stress_from_traits
from .spec2006 import (
    FIGURE_BENCHMARKS,
    SPEC2006_SUITE,
    all_programs,
    figure_benchmarks,
)
# Re-exported under get_* names: the bare names would shadow the
# `workloads.benchmark` submodule on the package object.
from .spec2006 import benchmark as get_benchmark
from .spec2006 import program as get_program
from .selftests import SELF_TESTS, self_test
from .generator import SyntheticWorkloadGenerator
from .execution import reference_output, runtime_seconds
from .stressmark import StressmarkResult, generate_didt_stressmark

__all__ = [
    "Benchmark",
    "Program",
    "WorkloadTraits",
    "stress_from_traits",
    "FIGURE_BENCHMARKS",
    "SPEC2006_SUITE",
    "all_programs",
    "figure_benchmarks",
    "get_benchmark",
    "get_program",
    "SELF_TESTS",
    "self_test",
    "SyntheticWorkloadGenerator",
    "reference_output",
    "runtime_seconds",
    "StressmarkResult",
    "generate_didt_stressmark",
]
