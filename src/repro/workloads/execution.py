"""Pure execution arithmetic shared by the machine model.

Runtime, reference outputs and output corruption are deterministic
functions of the program; the machine (:mod:`repro.hardware.xgene2`)
calls into this module so the same arithmetic is usable standalone
(e.g. by the energy analysis, which needs runtimes without running the
full fault path).
"""

from __future__ import annotations

import hashlib

from ..errors import ConfigurationError
from ..units import FREQ_MAX_MHZ, validate_frequency_mhz
from .benchmark import Program


def runtime_seconds(program: Program, freq_mhz: int = FREQ_MAX_MHZ) -> float:
    """Wall-clock runtime of one full program execution.

    ``instructions / (IPC * f)``; IPC is treated as frequency-
    independent, which overstates the slowdown of memory-bound programs
    at low frequency -- a conservative choice for the performance-loss
    side of the trade-off analysis (the paper likewise quotes the
    nominal 2x slowdown for the 1.2 GHz point).
    """
    validate_frequency_mhz(freq_mhz)
    traits = program.traits
    return traits.instructions / (traits.ipc * freq_mhz * 1e6)


def reference_output(program: Program) -> str:
    """Golden output digest of a program (what a correct run produces).

    The characterization framework compares run outputs against this,
    exactly like the real framework diffs program output files.
    """
    payload = f"{program.name}:reference".encode()
    return hashlib.sha256(payload).hexdigest()


def corrupted_output(program: Program, run_token: int) -> str:
    """Output digest of a run whose result was silently corrupted.

    Distinct from the reference with certainty, and distinct between
    runs (two SDCs rarely corrupt identically).
    """
    if run_token < 0:
        raise ConfigurationError("run_token must be non-negative")
    payload = f"{program.name}:sdc:{run_token}".encode()
    return hashlib.sha256(payload).hexdigest()
