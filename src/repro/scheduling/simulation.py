"""Closed-loop energy-efficiency simulation.

The paper's end goal is operational: run real work at harvested
voltages, save energy, *preserve correctness*.  This module closes the
loop that Sections 4-5 sketch: place a workload on the cores, pick a
plane voltage with a policy, actually execute every task on the
simulated machine at that voltage, meter the energy, and account for
what goes wrong -- silently corrupted outputs, or crashes that force
nominal-voltage re-execution and burn the saving.

Policies compared:

* ``nominal``     -- stock operation at 980 mV (the baseline energy);
* ``static_vmin`` -- the shared plane at the placement's worst measured
  (or calibrated) Vmin plus a safety margin;
* ``oracle``      -- zero-margin static Vmin (the upper bound on
  savings; any mis-measurement shows up as violations).

A margin sweep turns the safety margin into the energy-vs-risk frontier
the paper's severity discussion is about: at healthy margins the
savings are free; as the margin shrinks through zero the SDC and crash
accounting starts eating them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..data.calibration import chip_calibration
from ..effects import EffectType
from ..errors import ConfigurationError
from ..hardware import MachineState
from ..machines import Machine, MachineSpec
from ..units import FREQ_MAX_MHZ, PMD_NOMINAL_MV, snap_down_mv
from ..workloads.benchmark import Benchmark
from .scheduler import Assignment, SeverityAwareScheduler


@dataclass(frozen=True)
class SimulationReport:
    """Metered outcome of running one workload under one policy."""

    policy: str
    voltage_mv: int
    #: Total chip energy including re-executions, joules.
    energy_j: float
    #: Wall-clock of the batch (longest core, incl. re-runs), seconds.
    wall_s: float
    #: Runs that completed with corrupted output and were *not* caught.
    sdc_runs: int
    #: System crashes the watchdog had to recover (task re-run at
    #: nominal voltage afterwards).
    crash_recoveries: int
    #: Application crashes (re-run at nominal).
    app_crashes: int
    #: Corrected/uncorrected error events logged by EDAC.
    edac_ce: int
    edac_ue: int
    #: Energy of the nominal baseline for the same workload, joules.
    baseline_energy_j: float

    @property
    def saving_fraction(self) -> float:
        """Net energy saving vs the nominal baseline."""
        if self.baseline_energy_j <= 0:
            return 0.0
        return 1.0 - self.energy_j / self.baseline_energy_j

    @property
    def correct(self) -> bool:
        """True when every task produced a correct output."""
        return self.sdc_runs == 0

    def violations(self, application=None) -> int:
        """Correctness violations under an application class.

        SDC-tolerant workloads (Section 4.4: approximate computing,
        video, detector-style applications) absorb silent corruptions;
        for them only crashes count as violations -- and those were
        already re-executed, so they cost energy, not correctness.
        """
        from .mitigation import ApplicationClass
        if application is ApplicationClass.SDC_TOLERANT:
            return 0
        return self.sdc_runs


class EnergyEfficiencySimulation:
    """Runs one workload under several voltage policies on fresh,
    identically seeded machines (so policies are compared on the same
    fault realisations wherever voltages coincide)."""

    def __init__(
        self,
        workload: Sequence[Benchmark],
        chip: str = "TTT",
        seed: int = 2017,
        scheduler_policy: str = "robust_first",
        machine_factory: Optional[Callable[[], Machine]] = None,
    ) -> None:
        if not workload:
            raise ConfigurationError("workload must not be empty")
        if len(workload) > 8:
            raise ConfigurationError("at most one task per core (8)")
        self.workload = list(workload)
        self.chip = chip
        self.seed = int(seed)
        self.scheduler = SeverityAwareScheduler(chip)
        self.assignment: Assignment = self.scheduler.assign(
            self.workload, policy=scheduler_policy
        )
        self._machine_factory = machine_factory or (
            lambda: MachineSpec(chip=self.chip, seed=self.seed).build(
                power_on=False)
        )

    # -- policy voltages ---------------------------------------------------

    def policy_voltage_mv(
        self, policy: str, margin_mv: int = 10,
        governor: Optional[object] = None,
    ) -> int:
        """Shared-plane voltage a policy programs for this placement."""
        if policy == "nominal":
            return PMD_NOMINAL_MV
        if policy == "static_vmin":
            return min(
                PMD_NOMINAL_MV,
                snap_down_mv(self.assignment.chip_vmin_mv + margin_mv),
            )
        if policy == "oracle":
            return self.assignment.chip_vmin_mv
        if policy == "predicted":
            if governor is None:
                raise ConfigurationError(
                    "the 'predicted' policy needs a trained governor")
            machine = self._machine_factory()
            machine.power_on()
            snapshots = {
                core: machine.profile_program(
                    next(b for b in self.workload if b.name == name), core=core
                )
                for name, core in self.assignment.placement.items()
            }
            return governor.decide(snapshots).voltage_mv
        raise ConfigurationError(f"unknown policy {policy!r}")

    # -- execution --------------------------------------------------------------

    def run_policy(
        self, policy: str, margin_mv: int = 10, repeats: int = 1,
        governor: Optional[object] = None,
    ) -> SimulationReport:
        """Execute the workload ``repeats`` times under a policy."""
        if repeats <= 0:
            raise ConfigurationError("repeats must be positive")
        voltage = self.policy_voltage_mv(policy, margin_mv, governor=governor)
        baseline_energy = self._execute(PMD_NOMINAL_MV, repeats,
                                        meter_only=True)
        metered = self._execute(voltage, repeats)
        return SimulationReport(
            policy=policy,
            voltage_mv=voltage,
            energy_j=metered["energy_j"],
            wall_s=metered["wall_s"],
            sdc_runs=metered["sdc"],
            crash_recoveries=metered["sc"],
            app_crashes=metered["ac"],
            edac_ce=metered["ce"],
            edac_ue=metered["ue"],
            baseline_energy_j=baseline_energy["energy_j"],
        )

    def _execute(
        self, voltage_mv: int, repeats: int, meter_only: bool = False
    ) -> Dict[str, float]:
        machine = self._machine_factory()
        machine.power_on()
        freqs = [FREQ_MAX_MHZ] * 4
        power_w = machine.power_model.chip_power_w(voltage_mv, freqs)
        nominal_power_w = machine.power_model.chip_power_w(
            PMD_NOMINAL_MV, freqs)

        totals = {"energy_j": 0.0, "wall_s": 0.0, "sdc": 0, "sc": 0,
                  "ac": 0, "ce": 0, "ue": 0}
        for _round in range(repeats):
            round_wall = 0.0
            for name, core in self.assignment.placement.items():
                bench = next(b for b in self.workload if b.name == name)
                if meter_only:
                    # Baseline metering: no fault sampling needed.
                    from ..workloads.execution import runtime_seconds
                    runtime = runtime_seconds(bench.programs()[0], FREQ_MAX_MHZ)
                    totals["energy_j"] += nominal_power_w * runtime / 8.0
                    round_wall = max(round_wall, runtime)
                    continue
                if machine.state is not MachineState.RUNNING:
                    machine.press_reset()
                machine.slimpro.set_pmd_voltage_mv(voltage_mv)
                outcome = machine.run_program(bench, core)
                # Per-core share of the chip power; the whole chip is
                # active the whole batch, so 1/8 per task-run is the
                # clean accounting at equal runtimes.
                totals["energy_j"] += power_w * outcome.runtime_s / 8.0
                round_wall = max(round_wall, outcome.runtime_s)
                totals["ce"] += outcome.edac_ce
                totals["ue"] += outcome.edac_ue
                rerun = False
                if EffectType.SC in outcome.effects:
                    totals["sc"] += 1
                    machine.press_reset()
                    rerun = True
                elif EffectType.AC in outcome.effects:
                    totals["ac"] += 1
                    rerun = True
                elif EffectType.SDC in outcome.effects:
                    # Silent: nobody notices, the wrong result ships.
                    totals["sdc"] += 1
                if rerun:
                    # Crash recovery: re-execute at nominal voltage.
                    machine.slimpro.restore_nominal_voltages()
                    retry = machine.run_program(bench, core)
                    totals["energy_j"] += (
                        nominal_power_w * retry.runtime_s / 8.0
                    )
                    round_wall += retry.runtime_s
                    machine.slimpro.set_pmd_voltage_mv(voltage_mv)
            totals["wall_s"] += round_wall
        return totals

    # -- sweeps -------------------------------------------------------------------

    def margin_sweep(
        self, margins_mv: Sequence[int], repeats: int = 1
    ) -> List[SimulationReport]:
        """The energy-vs-risk frontier: static_vmin at several margins.

        Negative margins deliberately program below the measured Vmin
        -- the regime the severity function grades.
        """
        reports = []
        for margin in margins_mv:
            voltage = max(
                700,
                min(PMD_NOMINAL_MV, self.assignment.chip_vmin_mv + margin),
            )
            voltage = snap_down_mv(voltage)
            baseline = self._execute(PMD_NOMINAL_MV, repeats, meter_only=True)
            metered = self._execute(voltage, repeats)
            reports.append(SimulationReport(
                policy=f"static_vmin{margin:+d}mV",
                voltage_mv=voltage,
                energy_j=metered["energy_j"],
                wall_s=metered["wall_s"],
                sdc_runs=metered["sdc"],
                crash_recoveries=metered["sc"],
                app_crashes=metered["ac"],
                edac_ce=metered["ce"],
                edac_ue=metered["ue"],
                baseline_energy_j=baseline["energy_j"],
            ))
        return reports

    def compare_policies(self, repeats: int = 1) -> Dict[str, SimulationReport]:
        """nominal vs static_vmin(+10 mV) vs oracle."""
        return {
            policy: self.run_policy(policy, repeats=repeats)
            for policy in ("nominal", "static_vmin", "oracle")
        }
