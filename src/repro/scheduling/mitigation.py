"""Undervolting-effects mitigation (Section 4.4).

The first observed (or predicted) effect as voltage drops determines
the suitable approach:

=================  ==========  =======================================
predicted regime   severity    mitigation
=================  ==========  =======================================
nothing abnormal   0           none needed; minimum savings
corrected errors   ~1          ECC is the proxy; no extra mitigation
SDCs (+/- errors)  4..7        checkpoint/rollback or re-execution;
                               tolerable outright for SDC-tolerant
                               application classes
crashes            8..19       unusable without hardware redesign
=================  ==========  =======================================

:class:`CheckpointRollback` additionally models the recovery-cost side:
given a per-run failure probability and checkpoint interval, it
computes the expected runtime overhead -- the quantity a system
integrator weighs against the undervolting savings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError


class Mitigation(enum.Enum):
    """Mitigation approaches of Section 4.4."""

    #: Safe region: no action required.
    NONE = "none"
    #: Corrected-errors-first regime: ECC already absorbs the effects
    #: and serves as the undervolting proxy (the Itanium behaviour).
    ECC_PROXY = "ecc_proxy"
    #: Roll back to a stored checkpoint on detected anomaly.
    CHECKPOINT_ROLLBACK = "checkpoint_rollback"
    #: Re-execute the program at a safe V/F combination.
    REEXECUTION = "reexecution"
    #: Application tolerates the effects (approximate computing, video
    #: processing, jammer detection, ...).
    TOLERATE = "tolerate"
    #: Crash regime: unusable without serious hardware redesign.
    AVOID = "avoid"


class ApplicationClass(enum.Enum):
    """Workload classes by SDC tolerance (Section 4.4)."""

    #: Correctness-critical: any SDC is unacceptable.
    EXACT = "exact"
    #: Tolerates bounded output error (approximate computing, image /
    #: video processing, detector-style applications).
    SDC_TOLERANT = "sdc_tolerant"

    @property
    def severity_tolerance(self) -> float:
        """Highest acceptable severity for unmitigated operation
        ("for such applications, severity <= 4 can be used")."""
        return 4.0 if self is ApplicationClass.SDC_TOLERANT else 0.0


def recommend_mitigation(
    severity: float,
    application: ApplicationClass = ApplicationClass.EXACT,
    detectable: bool = True,
) -> Mitigation:
    """Mitigation recommendation for a predicted severity level.

    ``detectable`` says whether anomalies announce themselves (ECC
    notifications accompany the SDCs); a silent-SDC regime
    (severity = 4 with nothing else) cannot be rolled back because
    nothing triggers the rollback -- those areas "should be avoided"
    for exact applications.
    """
    if severity < 0:
        raise ConfigurationError("severity must be non-negative")
    if severity == 0:
        return Mitigation.NONE
    if severity <= application.severity_tolerance:
        return Mitigation.TOLERATE
    if severity <= 1.0:
        return Mitigation.ECC_PROXY
    if severity < 8.0:
        if not detectable:
            return Mitigation.AVOID
        return Mitigation.CHECKPOINT_ROLLBACK
    return Mitigation.AVOID


@dataclass(frozen=True)
class CheckpointRollback:
    """Expected-overhead model of checkpoint/rollback recovery.

    ``checkpoint_cost_s`` is paid every interval; on a detected anomaly
    the work since the last checkpoint (half an interval in
    expectation) is redone.
    """

    checkpoint_interval_s: float
    checkpoint_cost_s: float

    def __post_init__(self) -> None:
        if self.checkpoint_interval_s <= 0:
            raise ConfigurationError("checkpoint_interval_s must be positive")
        if self.checkpoint_cost_s < 0:
            raise ConfigurationError("checkpoint_cost_s must be non-negative")

    def expected_overhead_fraction(
        self, failure_rate_per_s: float
    ) -> float:
        """Expected runtime overhead fraction at a failure rate.

        Checkpointing overhead plus expected rework:
        ``cost/interval + rate * interval/2``.
        """
        if failure_rate_per_s < 0:
            raise ConfigurationError("failure_rate_per_s must be non-negative")
        checkpointing = self.checkpoint_cost_s / self.checkpoint_interval_s
        rework = failure_rate_per_s * self.checkpoint_interval_s / 2.0
        return checkpointing + rework

    def optimal_interval_s(self, failure_rate_per_s: float) -> float:
        """Young's approximation for the overhead-minimising interval:
        ``sqrt(2 * cost / rate)``."""
        if failure_rate_per_s <= 0:
            raise ConfigurationError("failure_rate_per_s must be positive")
        return (2.0 * self.checkpoint_cost_s / failure_rate_per_s) ** 0.5

    def worthwhile(
        self,
        failure_rate_per_s: float,
        saving_fraction: float,
    ) -> bool:
        """Is undervolting net-positive under this recovery scheme?

        True when the energy saving exceeds the expected overhead (both
        as fractions of nominal runtime/energy).
        """
        if not 0.0 <= saving_fraction <= 1.0:
            raise ConfigurationError("saving_fraction must be within [0, 1]")
        return saving_fraction > self.expected_overhead_fraction(failure_rate_per_s)
