"""Severity/Vmin-aware task-to-core allocation (Section 5).

Because the X-Gene 2's PMDs share one voltage plane, the chip voltage
is set by the *worst* (task, core) pairing.  The scheduler therefore
matches demanding tasks to robust cores: "the predictor ... can also
guide task scheduling so that tasks are assigned first to more robust
cores to obtain higher power savings".

Two policies are provided:

* ``"naive"`` -- tasks land on cores in arrival order (what a
  variation-oblivious OS does);
* ``"robust_first"`` -- tasks sorted by descending Vmin demand are
  placed on cores sorted by ascending process-variation offset.

The robust-first policy strictly dominates on the shared plane, and
the gap is one of the library's reproducible results (see the
scheduling ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..data.calibration import ChipCalibration, chip_calibration
from ..errors import ConfigurationError
from ..units import FREQ_MAX_MHZ
from ..workloads.benchmark import Benchmark
from ..energy.model import guardband_saving_fraction

#: Type of a Vmin oracle: (core, benchmark) -> safe Vmin in mV.  The
#: default oracle reads the calibration anchors; a prediction-backed
#: oracle can be swapped in (Figure 6's "online" path).
VminOracle = Callable[[int, Benchmark], int]


@dataclass(frozen=True)
class Assignment:
    """A complete placement of tasks onto cores."""

    #: benchmark name -> core index.
    placement: Mapping[str, int]
    #: Safe chip voltage for this placement (shared plane), mV.
    chip_vmin_mv: int
    #: Per-core safe Vmin of the placed task, mV.
    vmin_by_core: Mapping[int, int]
    policy: str

    @property
    def saving_fraction(self) -> float:
        """Full-speed power saving this placement unlocks."""
        return guardband_saving_fraction(self.chip_vmin_mv)


class SeverityAwareScheduler:
    """Places a workload set onto the chip's eight cores."""

    def __init__(
        self,
        chip: str = "TTT",
        freq_mhz: int = FREQ_MAX_MHZ,
        vmin_oracle: Optional[VminOracle] = None,
    ) -> None:
        self.calibration: ChipCalibration = chip_calibration(chip)
        self.freq_mhz = int(freq_mhz)
        self._oracle = vmin_oracle or self._calibration_oracle

    def _calibration_oracle(self, core: int, bench: Benchmark) -> int:
        return self.calibration.vmin_mv(core, bench.stress, self.freq_mhz)

    # -- policies ----------------------------------------------------------

    def assign(
        self,
        benchmarks: Sequence[Benchmark],
        policy: str = "robust_first",
        cores: Optional[Sequence[int]] = None,
    ) -> Assignment:
        """Place ``benchmarks`` onto ``cores`` under a policy."""
        cores = list(cores) if cores is not None else list(range(8))
        if len(benchmarks) > len(cores):
            raise ConfigurationError(
                f"{len(benchmarks)} tasks do not fit on {len(cores)} cores"
            )
        if len(set(cores)) != len(cores):
            raise ConfigurationError("cores must be distinct")
        if policy == "naive":
            order = list(benchmarks)
            core_order = list(cores)
        elif policy == "robust_first":
            # Most voltage-demanding tasks first, onto the most robust
            # (lowest variation offset) cores.
            order = sorted(benchmarks, key=lambda b: -b.stress)
            core_order = sorted(
                cores, key=lambda c: (self.calibration.core_offsets_mv[c], c)
            )
        else:
            raise ConfigurationError(f"unknown policy {policy!r}")

        placement: Dict[str, int] = {}
        vmin_by_core: Dict[int, int] = {}
        for bench, core in zip(order, core_order):
            placement[bench.name] = core
            vmin_by_core[core] = self._oracle(core, bench)
        chip_vmin = max(vmin_by_core.values())
        return Assignment(
            placement=placement,
            chip_vmin_mv=chip_vmin,
            vmin_by_core=vmin_by_core,
            policy=policy,
        )

    def best_assignment(
        self, benchmarks: Sequence[Benchmark], cores: Optional[Sequence[int]] = None
    ) -> Assignment:
        """Optimal placement for the shared plane.

        Minimising ``max(vmin(core, task))`` over placements is solved
        exactly by the rearrangement pairing used in ``robust_first``
        when the oracle is additive in (task demand, core offset) -- as
        the calibration model is -- so this simply returns that
        placement; it exists as a named method so prediction-backed
        oracles (not necessarily additive) can override it later.
        """
        return self.assign(benchmarks, policy="robust_first", cores=cores)

    def compare_policies(
        self, benchmarks: Sequence[Benchmark]
    ) -> Dict[str, Assignment]:
        """Naive vs robust-first on the same workload set."""
        return {
            policy: self.assign(benchmarks, policy=policy)
            for policy in ("naive", "robust_first")
        }

    def assign_waves(
        self,
        benchmarks: Sequence[Benchmark],
        policy: str = "robust_first",
        cores: Optional[Sequence[int]] = None,
    ) -> List[Assignment]:
        """Place more tasks than cores: consecutive waves.

        Tasks are placed wave by wave (each wave at most one task per
        core) under the chosen policy; returns one :class:`Assignment`
        per wave.  With robust-first ordering the most demanding tasks
        land in the first wave on the most robust cores, so *later*
        waves run at deeper voltages -- a free scheduling win the
        shared-plane constraint makes possible.
        """
        cores = list(cores) if cores is not None else list(range(8))
        if not benchmarks:
            raise ConfigurationError("need at least one task")
        ordered = (
            sorted(benchmarks, key=lambda b: -b.stress)
            if policy == "robust_first" else list(benchmarks)
        )
        waves: List[Assignment] = []
        for start in range(0, len(ordered), len(cores)):
            wave = ordered[start:start + len(cores)]
            waves.append(self.assign(wave, policy=policy, cores=cores))
        return waves

    # -- per-PMD frequency planning (the Figure-9 knob) -----------------------

    def slowdown_plan(
        self, assignment: Assignment, max_perf_loss: float
    ) -> Tuple[int, List[int]]:
        """Choose PMDs to slow to 1.2 GHz within a performance budget.

        Returns (chip voltage after slowing, slowed PMD indices),
        slowing weakest PMDs first; each slowed PMD costs 1/8 of
        throughput per core, i.e. 12.5 % per PMD pair.
        """
        if not 0.0 <= max_perf_loss < 1.0:
            raise ConfigurationError("max_perf_loss must be within [0, 1)")
        # Slowing one PMD (a pair of cores) to half speed costs 2/8 of
        # aggregate throughput = 12.5% per core pair at equal weights.
        budget_pmds = int(max_perf_loss // 0.125)
        pmd_constraint: Dict[int, int] = {}
        for core, vmin in assignment.vmin_by_core.items():
            pmd = core // 2
            pmd_constraint[pmd] = max(pmd_constraint.get(pmd, 0), vmin)
        weakest_first = sorted(pmd_constraint, key=lambda p: -pmd_constraint[p])
        slowed = weakest_first[: min(budget_pmds, len(weakest_first))]
        remaining = [
            vmin for core, vmin in assignment.vmin_by_core.items()
            if core // 2 not in slowed
        ]
        voltage = max(
            remaining + [self.calibration.vmin_1200_mv]
        ) if remaining else self.calibration.vmin_1200_mv
        return voltage, slowed
