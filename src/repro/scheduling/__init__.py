"""System-software use of the characterization: scheduling, voltage
governance and undervolting-effects mitigation (Sections 4.4 and 5).

* :mod:`repro.scheduling.scheduler` -- severity/Vmin-aware task-to-core
  allocation on the shared voltage plane.
* :mod:`repro.scheduling.governor` -- an online voltage governor that
  monitors the five predictive PMU events and programs the plane.
* :mod:`repro.scheduling.dvfs` -- the conventional DVFS baseline
  (frequency scaling at nominal-guardband voltages).
* :mod:`repro.scheduling.mitigation` -- the Section-4.4 mitigation
  ladder keyed on predicted severity.
"""

from .scheduler import Assignment, SeverityAwareScheduler
from .governor import GovernorDecision, VoltageGovernor
from .dvfs import DVFS_OPP_TABLE, DvfsPolicy, OperatingPoint
from .mitigation import (
    ApplicationClass,
    CheckpointRollback,
    Mitigation,
    recommend_mitigation,
)
from .simulation import EnergyEfficiencySimulation, SimulationReport

__all__ = [
    "Assignment",
    "SeverityAwareScheduler",
    "GovernorDecision",
    "VoltageGovernor",
    "DVFS_OPP_TABLE",
    "DvfsPolicy",
    "OperatingPoint",
    "ApplicationClass",
    "CheckpointRollback",
    "Mitigation",
    "recommend_mitigation",
    "EnergyEfficiencySimulation",
    "SimulationReport",
]
