"""Online voltage governor (the "online" half of Figure 6).

The governor is the software daemon the paper sketches: it watches the
five predictive PMU events per core, predicts each (core, workload)
pair's safe Vmin or severity curve, and programs the shared plane to
the highest predicted Vmin plus a configurable safety margin.  For
severity-tolerant applications (Section 4.4's approximate-computing /
video classes) it can instead target the deepest voltage whose
predicted severity stays within the application's tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..data.counters import RFE_SELECTED_FEATURES
from ..errors import ConfigurationError, PredictionError
from ..prediction.features import VOLTAGE_FEATURE
from ..prediction.linreg import OrdinaryLeastSquares
from ..units import PMD_NOMINAL_MV, snap_down_mv, validate_voltage_mv
from ..workloads.benchmark import Benchmark


@dataclass(frozen=True)
class GovernorDecision:
    """One voltage decision for the shared plane."""

    voltage_mv: int
    #: Per-core predicted safe Vmin driving the decision.
    predicted_vmin_by_core: Mapping[int, float]
    #: Which core pinned the decision.
    limiting_core: int
    #: True when the severity-tolerant path was used.
    aggressive: bool = False


class VoltageGovernor:
    """Predictor-driven governor for the shared PMD plane.

    Parameters
    ----------
    vmin_model:
        Fitted model mapping the five RFE events (per kilo-instruction)
        to a Vmin estimate for *some* reference core; per-core offsets
        adjust it (trained models are core-specific in the paper; the
        offset table generalises one model across cores).
    core_offsets_mv:
        Process-variation offsets per core (0 for the reference core).
    margin_mv:
        Safety margin added above every predicted Vmin.
    severity_model:
        Optional fitted model over the five events plus voltage,
        predicting severity; enables :meth:`decide_aggressive`.
    """

    def __init__(
        self,
        vmin_model: OrdinaryLeastSquares,
        core_offsets_mv: Sequence[int] = (0,) * 8,
        margin_mv: int = 10,
        severity_model: Optional[OrdinaryLeastSquares] = None,
    ) -> None:
        if not vmin_model.is_fitted:
            raise PredictionError("vmin_model must be fitted")
        if len(core_offsets_mv) != 8:
            raise ConfigurationError("core_offsets_mv must have 8 entries")
        if margin_mv < 0:
            raise ConfigurationError("margin_mv must be non-negative")
        self.vmin_model = vmin_model
        self.severity_model = severity_model
        self.core_offsets_mv = tuple(int(o) for o in core_offsets_mv)
        self.margin_mv = int(margin_mv)

    # -- feature extraction -------------------------------------------------

    @staticmethod
    def features_from_snapshot(snapshot: Mapping[str, float]) -> np.ndarray:
        """The five RFE events, per kilo-instruction."""
        instructions = float(snapshot["INST_RETIRED"])
        if instructions <= 0:
            raise PredictionError("snapshot must have positive INST_RETIRED")
        return np.array(
            [float(snapshot[name]) / instructions * 1000.0
             for name in RFE_SELECTED_FEATURES]
        )

    # -- decisions --------------------------------------------------------------

    def decide(
        self, snapshots_by_core: Mapping[int, Mapping[str, float]]
    ) -> GovernorDecision:
        """Conservative decision: highest predicted Vmin plus margin."""
        if not snapshots_by_core:
            raise ConfigurationError("need at least one active core")
        predicted: Dict[int, float] = {}
        for core, snapshot in snapshots_by_core.items():
            features = self.features_from_snapshot(snapshot)
            base = float(self.vmin_model.predict(features.reshape(1, -1))[0])
            predicted[core] = base + self.core_offsets_mv[core]
        limiting_core = max(predicted, key=lambda c: (predicted[c], c))
        target = predicted[limiting_core] + self.margin_mv
        target = min(target, float(PMD_NOMINAL_MV))
        voltage = snap_down_mv(max(target, 700.0))
        return GovernorDecision(
            voltage_mv=voltage,
            predicted_vmin_by_core=predicted,
            limiting_core=limiting_core,
        )

    def decide_aggressive(
        self,
        snapshots_by_core: Mapping[int, Mapping[str, float]],
        severity_tolerance: float,
        floor_mv: int = 760,
    ) -> GovernorDecision:
        """Severity-tolerant decision (Section 4.4).

        Walks the plane downward while the predicted severity of every
        active core stays within ``severity_tolerance`` (e.g. 4 for
        SDC-tolerant approximate-computing workloads).
        """
        if self.severity_model is None:
            raise PredictionError("decide_aggressive needs a severity_model")
        if severity_tolerance < 0:
            raise ConfigurationError("severity_tolerance must be non-negative")
        conservative = self.decide(snapshots_by_core)
        validate_voltage_mv(floor_mv)

        voltage = conservative.voltage_mv
        candidate = voltage
        while candidate - 5 >= floor_mv:
            candidate -= 5
            worst = 0.0
            for core, snapshot in snapshots_by_core.items():
                features = self.features_from_snapshot(snapshot)
                row = np.concatenate(
                    [features, [candidate + self.core_offsets_mv[core]]]
                )
                worst = max(
                    worst, float(self.severity_model.predict(row.reshape(1, -1))[0])
                )
            if worst > severity_tolerance:
                break
            voltage = candidate
        return GovernorDecision(
            voltage_mv=voltage,
            predicted_vmin_by_core=conservative.predicted_vmin_by_core,
            limiting_core=conservative.limiting_core,
            aggressive=voltage < conservative.voltage_mv,
        )

    # -- training helper ------------------------------------------------------------

    @staticmethod
    def fit_severity_model(
        samples: Sequence[Mapping[str, float]],
        voltages_mv: Sequence[int],
        severities: Sequence[float],
    ) -> OrdinaryLeastSquares:
        """Fit a severity model in the governor's feature layout.

        The layout is the five RFE events (per kilo-instruction)
        followed by the supply voltage -- pass the result as
        ``severity_model`` to enable :meth:`decide_aggressive`.
        """
        if not (len(samples) == len(voltages_mv) == len(severities)):
            raise PredictionError("samples, voltages and severities must align")
        rows = [
            np.concatenate(
                [VoltageGovernor.features_from_snapshot(snap), [float(volt)]]
            )
            for snap, volt in zip(samples, voltages_mv)
        ]
        return OrdinaryLeastSquares().fit(
            np.vstack(rows),
            np.asarray(severities, dtype=float),
            feature_names=tuple(RFE_SELECTED_FEATURES) + (VOLTAGE_FEATURE,),
        )

    @classmethod
    def train_from_observations(
        cls,
        snapshots: Sequence[Mapping[str, float]],
        vmins_mv: Sequence[float],
        core_offsets_mv: Sequence[int] = (0,) * 8,
        margin_mv: int = 10,
    ) -> "VoltageGovernor":
        """Fit the Vmin model from (snapshot, observed Vmin) pairs."""
        if len(snapshots) != len(vmins_mv):
            raise PredictionError("one Vmin per snapshot required")
        x = np.vstack([cls.features_from_snapshot(s) for s in snapshots])
        model = OrdinaryLeastSquares().fit(
            x, np.asarray(vmins_mv, dtype=float),
            feature_names=RFE_SELECTED_FEATURES,
        )
        return cls(model, core_offsets_mv=core_offsets_mv, margin_mv=margin_mv)
