"""Conventional DVFS baseline.

The comparison point for harvested-guardband operation: a standard
governor that scales frequency along a table of *nominal* operating
performance points (OPPs) whose voltages retain the full design
guardband.  The undervolting approaches of the paper beat this baseline
by the guardband margin at every frequency.

The OPP voltage curve follows the alpha-power timing law plus the
design guardband, anchored at (2.4 GHz, 980 mV) and bottoming out at
the regulator floor -- the shape a vendor's DVFS table has.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import ConfigurationError
from ..hardware.corners import corner_for_chip
from ..hardware.timing import AlphaPowerTimingModel
from ..units import (
    FREQ_MAX_MHZ,
    FREQ_MIN_MHZ,
    FREQ_STEP_MHZ,
    PMD_NOMINAL_MV,
    VOLTAGE_FLOOR_MV,
    snap_down_mv,
    validate_frequency_mhz,
)
from ..energy.model import relative_power


@dataclass(frozen=True)
class OperatingPoint:
    """One (frequency, voltage) pair of the vendor table."""

    freq_mhz: int
    voltage_mv: int


def _build_opp_table(chip: str = "TTT") -> List[OperatingPoint]:
    """Vendor-style OPP table with full design guardbands."""
    timing = AlphaPowerTimingModel.for_corner(corner_for_chip(chip))
    #: Guardband the vendor keeps at every point, mV (the ~65-120 mV
    #: static+dynamic margin the paper measures at 2.4 GHz).
    guardband_mv = PMD_NOMINAL_MV - timing.min_voltage_mv(FREQ_MAX_MHZ)
    points = []
    for freq in range(FREQ_MIN_MHZ, FREQ_MAX_MHZ + 1, FREQ_STEP_MHZ):
        physical = timing.min_voltage_mv(freq)
        # Clamp into the regulator's range: low-frequency points bottom
        # out at the regulator floor.
        target = min(
            float(PMD_NOMINAL_MV), max(physical + guardband_mv, float(VOLTAGE_FLOOR_MV))
        )
        voltage = snap_down_mv(target)
        points.append(OperatingPoint(freq_mhz=freq, voltage_mv=voltage))
    return points


#: The stock TTT operating-point table.
DVFS_OPP_TABLE: List[OperatingPoint] = _build_opp_table()


class DvfsPolicy:
    """Utilisation-driven frequency governor over the OPP table."""

    def __init__(self, opp_table: Sequence[OperatingPoint] = None) -> None:
        table = list(opp_table) if opp_table is not None else list(DVFS_OPP_TABLE)
        if not table:
            raise ConfigurationError("OPP table must not be empty")
        self.table = sorted(table, key=lambda p: p.freq_mhz)

    def point_for_utilisation(self, utilisation: float) -> OperatingPoint:
        """Lowest OPP whose frequency covers the demanded utilisation."""
        if not 0.0 <= utilisation <= 1.0:
            raise ConfigurationError("utilisation must be within [0, 1]")
        demanded = utilisation * self.table[-1].freq_mhz
        for point in self.table:
            if point.freq_mhz >= demanded:
                return point
        return self.table[-1]

    def point_for_frequency(self, freq_mhz: int) -> OperatingPoint:
        """The table entry for an exact frequency."""
        validate_frequency_mhz(freq_mhz)
        for point in self.table:
            if point.freq_mhz == freq_mhz:
                return point
        raise ConfigurationError(f"{freq_mhz} MHz not in the OPP table")

    def power_rel(self, freq_mhz: int, chip: str = "TTT") -> float:
        """Relative chip power at one OPP, all PMDs at that point."""
        point = self.point_for_frequency(freq_mhz)
        return relative_power(point.voltage_mv, [point.freq_mhz] * 4, chip)

    def undervolting_advantage(
        self, freq_mhz: int, harvested_vmin_mv: int, chip: str = "TTT"
    ) -> float:
        """Extra power saving of guardband harvesting over this baseline
        at equal frequency (the library's DVFS-vs-undervolting result)."""
        baseline = self.power_rel(freq_mhz, chip)
        harvested = relative_power(harvested_vmin_mv, [freq_mhz] * 4, chip)
        return baseline - harvested
