"""Recursive Feature Elimination (Section 4.2).

Given an estimator that assigns comparable weights to features, RFE
trains on the full feature set, prunes the features with the smallest
absolute weights, and repeats on the pruned set until the requested
number of features remains -- the scheme the paper uses to go from 101
PMU events to 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DatasetError, PredictionError
from .linreg import OrdinaryLeastSquares


@dataclass(frozen=True)
class RfeResult:
    """Outcome of one elimination run."""

    #: Names of the surviving features, in original column order.
    selected: Tuple[str, ...]
    #: Column indices of the surviving features.
    support: Tuple[int, ...]
    #: Elimination rank per original feature: 1 = selected, larger =
    #: eliminated earlier.
    ranking: Tuple[int, ...]


class RecursiveFeatureElimination:
    """RFE around any estimator exposing ``standardized_coef``.

    Parameters
    ----------
    n_features:
        How many features to keep (the paper keeps 5).
    step:
        How many features to drop per iteration (at least 1; large
        steps are faster but coarser).
    estimator_factory:
        Builds a fresh estimator per iteration; defaults to
        :class:`~repro.prediction.linreg.OrdinaryLeastSquares`.
    """

    def __init__(
        self,
        n_features: int = 5,
        step: int = 1,
        estimator_factory: Optional[Callable[[], OrdinaryLeastSquares]] = None,
    ) -> None:
        if n_features <= 0:
            raise PredictionError("n_features must be positive")
        if step <= 0:
            raise PredictionError("step must be positive")
        self.n_features = int(n_features)
        self.step = int(step)
        self.estimator_factory = estimator_factory or OrdinaryLeastSquares

    def fit(self, x, y, feature_names: Sequence[str]) -> RfeResult:
        """Run the elimination; returns the selection result."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise DatasetError("X must be 2-D")
        if len(feature_names) != x.shape[1]:
            raise DatasetError("feature_names length must match X columns")
        if self.n_features > x.shape[1]:
            raise PredictionError(
                f"cannot select {self.n_features} of {x.shape[1]} features"
            )

        remaining: List[int] = list(range(x.shape[1]))
        ranking = np.ones(x.shape[1], dtype=int)
        elimination_round = 1
        while len(remaining) > self.n_features:
            estimator = self.estimator_factory()
            estimator.fit(x[:, remaining], y)
            weights = np.abs(estimator.standardized_coef)
            n_drop = min(self.step, len(remaining) - self.n_features)
            # Drop the n_drop smallest-|weight| features this round.
            drop_local = np.argsort(weights, kind="stable")[:n_drop]
            elimination_round += 1
            for local_index in sorted(drop_local, reverse=True):
                column = remaining.pop(int(local_index))
                ranking[column] = elimination_round
        # Re-normalise rankings so eliminated-later features rank lower
        # numbers: selected features keep rank 1.
        eliminated_rounds = sorted({r for r in ranking if r > 1}, reverse=True)
        remap = {round_id: idx + 2 for idx, round_id in enumerate(eliminated_rounds)}
        ranking = np.array([1 if r == 1 else remap[r] for r in ranking])
        support = tuple(sorted(remaining))
        return RfeResult(
            selected=tuple(feature_names[i] for i in support),
            support=support,
            ranking=tuple(int(r) for r in ranking),
        )
