"""Recursive Feature Elimination (Section 4.2).

Given an estimator that assigns comparable weights to features, RFE
trains on the full feature set, prunes the features with the smallest
absolute weights, and repeats on the pruned set until the requested
number of features remains -- the scheme the paper uses to go from 101
PMU events to 5.

The elimination loop is estimator-agnostic: :meth:`fit` drives it with
batch OLS refits on column slices of the sample matrix, while
:meth:`fit_online` drives the *same* loop with moment-sliced solves of
a streaming :class:`~repro.prediction.linreg.OnlineLeastSquares` -- no
sample rows needed -- so a streaming trainer selects the same features
a batch refit on the same prefix would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DatasetError, PredictionError
from .linreg import RFE_RIDGE_ALPHA, OnlineLeastSquares, OrdinaryLeastSquares


@dataclass(frozen=True)
class RfeResult:
    """Outcome of one elimination run."""

    #: Names of the surviving features, in original column order.
    selected: Tuple[str, ...]
    #: Column indices of the surviving features.
    support: Tuple[int, ...]
    #: Elimination rank per original feature: 1 = selected, larger =
    #: eliminated earlier.
    ranking: Tuple[int, ...]


class RecursiveFeatureElimination:
    """RFE around any estimator exposing ``standardized_coef``.

    Parameters
    ----------
    n_features:
        How many features to keep (the paper keeps 5).
    step:
        How many features to drop per iteration (at least 1; large
        steps are faster but coarser).
    estimator_factory:
        Builds a fresh estimator per iteration; defaults to a
        Tikhonov-damped :class:`~repro.prediction.linreg.OrdinaryLeastSquares`
        (``ridge_alpha = RFE_RIDGE_ALPHA``).  The damping keeps the
        ranking weights a continuous function of the samples, so
        elimination order is well defined -- and matches the streaming
        path -- even while more events than samples survive.
    """

    def __init__(
        self,
        n_features: int = 5,
        step: int = 1,
        estimator_factory: Optional[Callable[[], OrdinaryLeastSquares]] = None,
    ) -> None:
        if n_features <= 0:
            raise PredictionError("n_features must be positive")
        if step <= 0:
            raise PredictionError("step must be positive")
        self.n_features = int(n_features)
        self.step = int(step)
        self.estimator_factory = estimator_factory or (
            lambda: OrdinaryLeastSquares(ridge_alpha=RFE_RIDGE_ALPHA)
        )

    def _check_width(self, n_columns: int) -> None:
        """Elimination needs strictly more columns than survivors."""
        if self.n_features >= n_columns:
            raise PredictionError(
                f"cannot select {self.n_features} of {n_columns} features; "
                "elimination needs a strictly larger candidate set"
            )

    @staticmethod
    def _check_constants(
        feature_names: Sequence[str], constant: Sequence[str]
    ) -> None:
        """Zero-variance columns cannot be ranked -- refuse them."""
        if constant:
            raise DatasetError(
                "cannot rank zero-variance feature columns: "
                f"{sorted(constant)}; drop constant features before "
                "elimination"
            )

    def _eliminate(
        self,
        n_columns: int,
        feature_names: Sequence[str],
        coef_provider: Callable[[List[int]], "np.ndarray"],
    ) -> RfeResult:
        """Shared elimination loop.

        ``coef_provider(remaining)`` fits an estimator restricted to
        the ``remaining`` column indices and returns its absolute
        standardised weights, one per remaining column.
        """
        remaining: List[int] = list(range(n_columns))
        ranking = np.ones(n_columns, dtype=int)
        elimination_round = 1
        while len(remaining) > self.n_features:
            weights = coef_provider(remaining)
            n_drop = min(self.step, len(remaining) - self.n_features)
            # Drop the n_drop smallest-|weight| features this round.
            drop_local = np.argsort(weights, kind="stable")[:n_drop]
            elimination_round += 1
            for local_index in sorted(drop_local, reverse=True):
                column = remaining.pop(int(local_index))
                ranking[column] = elimination_round
        # Re-normalise rankings so eliminated-later features rank lower
        # numbers: selected features keep rank 1.
        eliminated_rounds = sorted({r for r in ranking if r > 1}, reverse=True)
        remap = {round_id: idx + 2 for idx, round_id in enumerate(eliminated_rounds)}
        ranking = np.array([1 if r == 1 else remap[r] for r in ranking])
        support = tuple(sorted(remaining))
        return RfeResult(
            selected=tuple(feature_names[i] for i in support),
            support=support,
            ranking=tuple(int(r) for r in ranking),
        )

    def fit(self, x: Any, y: Any, feature_names: Sequence[str]) -> RfeResult:
        """Run the elimination on sample rows; returns the selection."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise DatasetError("X must be 2-D")
        if len(feature_names) != x.shape[1]:
            raise DatasetError("feature_names length must match X columns")
        self._check_width(x.shape[1])
        if x.shape[0] > 0:
            constant_mask = x.min(axis=0) == x.max(axis=0)
            self._check_constants(
                feature_names,
                [n for n, c in zip(feature_names, constant_mask) if c],
            )

        def batch_coef(remaining: List[int]) -> "np.ndarray":
            estimator = self.estimator_factory()
            estimator.fit(x[:, remaining], y)
            return np.abs(estimator.standardized_coef)

        return self._eliminate(x.shape[1], feature_names, batch_coef)

    def fit_online(self, model: OnlineLeastSquares) -> RfeResult:
        """Run the elimination against a streaming estimator's moments.

        Each round solves a column subset of the accumulated
        sufficient statistics (:meth:`OnlineLeastSquares.subset`), so
        the selection equals :meth:`fit` on the same sample prefix up
        to floating-point accumulation order -- without retaining any
        sample rows.
        """
        if not model.is_fitted:
            raise PredictionError(
                "online RFE needs at least one partial_fit sample"
            )
        self._check_width(model.n_features)
        self._check_constants(model.feature_names, model.constant_features())

        def online_coef(remaining: List[int]) -> "np.ndarray":
            return np.abs(
                model.subset(remaining).ridge_standardized_coef(RFE_RIDGE_ALPHA)
            )

        return self._eliminate(
            model.n_features, model.feature_names, online_coef
        )
