"""Prediction of Vmin and severity from performance counters (Section 4).

The four-phase flow of Figure 6:

1. **Characterization** (offline) -- :mod:`repro.core` produces Vmin and
   severity tables.
2. **Profiling** -- the machine's PMU collects all 101 events per
   program at nominal conditions.
3. **Model training** -- Recursive Feature Elimination down to the five
   most informative events, then ordinary-least-squares regression.
4. **Prediction** -- held-out evaluation with R-squared and RMSE
   against the naive mean-of-training-targets baseline.
"""

from .metrics import r2_score, rmse
from .linreg import OrdinaryLeastSquares
from .rfe import RecursiveFeatureElimination
from .naive import NaiveMeanPredictor
from .dataset import (
    RegressionDataset,
    severity_dataset_from_store,
    train_test_split,
    vmin_dataset_from_store,
)
from .features import FeatureAssembler, VOLTAGE_FEATURE
from .pipeline import (
    PredictionReport,
    PredictionPipeline,
    SeverityStudy,
    VminStudy,
)
from .crossval import (
    CrossValidationReport,
    TransferReport,
    cross_core_transfer,
    kfold_cross_validate,
)

__all__ = [
    "r2_score",
    "rmse",
    "OrdinaryLeastSquares",
    "RecursiveFeatureElimination",
    "NaiveMeanPredictor",
    "RegressionDataset",
    "severity_dataset_from_store",
    "train_test_split",
    "vmin_dataset_from_store",
    "FeatureAssembler",
    "VOLTAGE_FEATURE",
    "PredictionReport",
    "PredictionPipeline",
    "SeverityStudy",
    "VminStudy",
    "CrossValidationReport",
    "TransferReport",
    "cross_core_transfer",
    "kfold_cross_validate",
]
