"""Prediction of Vmin and severity from performance counters (Section 4).

The four-phase flow of Figure 6:

1. **Characterization** (offline) -- :mod:`repro.core` produces Vmin and
   severity tables.
2. **Profiling** -- the machine's PMU collects all 101 events per
   program at nominal conditions.
3. **Model training** -- Recursive Feature Elimination down to the five
   most informative events, then ordinary-least-squares regression.
4. **Prediction** -- held-out evaluation with R-squared and RMSE
   against the naive mean-of-training-targets baseline.

Beyond the paper's offline loop, the package trains *while campaigns
are still running*: :func:`iter_journal_datasets` cuts resumable
dataset cursors from a campaign-store journal,
:class:`OnlineLeastSquares` accumulates them into a recursive
least-squares model matching the batch refit to floating-point
tolerance, and :class:`StreamingTrainer` wraps both with prequential
drift tracking and versioned ``repro-model/v1`` artifacts
(:mod:`repro.store.models`).
"""

from .metrics import r2_score, rmse
from .linreg import RFE_RIDGE_ALPHA, OnlineLeastSquares, OrdinaryLeastSquares
from .rfe import RecursiveFeatureElimination
from .naive import NaiveMeanPredictor
from .dataset import (
    JournalBatch,
    RegressionDataset,
    iter_journal_datasets,
    severity_dataset_from_store,
    train_test_split,
    vmin_dataset_from_store,
)
from .features import FeatureAssembler, VOLTAGE_FEATURE
from .pipeline import (
    FittedModel,
    PredictionReport,
    PredictionPipeline,
    SeverityStudy,
    VminStudy,
    batch_fit,
    fit_severity_model_from_store,
    fit_vmin_model_from_store,
)
from .streaming import (
    TRAINABLE_TARGETS,
    FleetStreamingTrainer,
    StreamingTrainer,
)
from .crossval import (
    CrossValidationReport,
    TransferReport,
    cross_core_transfer,
    kfold_cross_validate,
)

__all__ = [
    "r2_score",
    "rmse",
    "OnlineLeastSquares",
    "OrdinaryLeastSquares",
    "RFE_RIDGE_ALPHA",
    "RecursiveFeatureElimination",
    "NaiveMeanPredictor",
    "JournalBatch",
    "RegressionDataset",
    "iter_journal_datasets",
    "severity_dataset_from_store",
    "train_test_split",
    "vmin_dataset_from_store",
    "FeatureAssembler",
    "VOLTAGE_FEATURE",
    "FittedModel",
    "PredictionReport",
    "PredictionPipeline",
    "SeverityStudy",
    "VminStudy",
    "batch_fit",
    "fit_severity_model_from_store",
    "fit_vmin_model_from_store",
    "FleetStreamingTrainer",
    "StreamingTrainer",
    "TRAINABLE_TARGETS",
    "CrossValidationReport",
    "TransferReport",
    "cross_core_transfer",
    "kfold_cross_validate",
]
