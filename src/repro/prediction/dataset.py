"""Regression datasets and the 80/20 split (Section 4.3).

A *sample* is "an information vector ... consisting of the values of
the dependent and independent variables": here a feature vector (PMU
counters, optionally plus the characterization voltage), a target
(Vmin or severity) and a metadata tag identifying its origin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import DatasetError


@dataclass(frozen=True)
class RegressionDataset:
    """Feature matrix + targets + provenance."""

    x: np.ndarray
    y: np.ndarray
    feature_names: Tuple[str, ...]
    #: One tag per sample, e.g. "bwaves@895mV".
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=float)
        y = np.asarray(self.y, dtype=float)
        if x.ndim != 2:
            raise DatasetError("x must be 2-D (samples x features)")
        if y.ndim != 1 or y.shape[0] != x.shape[0]:
            raise DatasetError("y must be 1-D with one target per sample")
        if len(self.feature_names) != x.shape[1]:
            raise DatasetError("feature_names must match x columns")
        if self.tags and len(self.tags) != x.shape[0]:
            raise DatasetError("tags must match sample count")
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)

    def __len__(self) -> int:
        return int(self.x.shape[0])

    def subset(self, indices: Sequence[int]) -> "RegressionDataset":
        """Row subset preserving order of ``indices``."""
        indices = list(indices)
        return RegressionDataset(
            x=self.x[indices],
            y=self.y[indices],
            feature_names=self.feature_names,
            tags=tuple(self.tags[i] for i in indices) if self.tags else (),
        )

    def select_features(self, names: Sequence[str]) -> "RegressionDataset":
        """Column subset by feature name (post-RFE restriction)."""
        missing = [n for n in names if n not in self.feature_names]
        if missing:
            raise DatasetError(f"unknown features: {missing}")
        cols = [self.feature_names.index(n) for n in names]
        return RegressionDataset(
            x=self.x[:, cols],
            y=self.y,
            feature_names=tuple(names),
            tags=self.tags,
        )


def train_test_split(
    dataset: RegressionDataset,
    test_fraction: float = 0.2,
    seed: Optional[int] = 0,
) -> Tuple[RegressionDataset, RegressionDataset]:
    """Deterministic shuffled split; the paper uses 80 % / 20 %.

    ``seed=None`` disables shuffling (first rows train, last rows
    test), which is occasionally useful for time-ordered data.
    """
    if not 0.0 < test_fraction < 1.0:
        raise DatasetError("test_fraction must be in (0, 1)")
    n = len(dataset)
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise DatasetError(
            f"{n} samples cannot support a {test_fraction:.0%} test split"
        )
    indices = np.arange(n)
    if seed is not None:
        np.random.default_rng(seed).shuffle(indices)
    test_idx = indices[-n_test:]
    train_idx = indices[:-n_test]
    return dataset.subset(train_idx.tolist()), dataset.subset(test_idx.tolist())
