"""Regression datasets and the 80/20 split (Section 4.3).

A *sample* is "an information vector ... consisting of the values of
the dependent and independent variables": here a feature vector (PMU
counters, optionally plus the characterization voltage), a target
(Vmin or severity) and a metadata tag identifying its origin.

Datasets can also be assembled straight from a journaled campaign
store (:func:`vmin_dataset_from_store` /
:func:`severity_dataset_from_store`): the characterization targets
come from the journal and the PMU features from a machine rebuilt
from the store's embedded spec -- so the training box never needs the
in-memory objects of the box that ran the campaigns.  Each program is
profiled on its *own* freshly built machine, which makes the feature
vectors a pure function of (spec, program): the same rows come out
whether a journal is consumed whole, in chunks, or out of grid order.
That invariance is what the streaming cursors
(:func:`iter_journal_datasets`) rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..errors import DatasetError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..store import CampaignStore

#: A store argument: an open :class:`~repro.store.CampaignStore` or the
#: directory path of one.
StoreLike = Union["CampaignStore", str, Path]


@dataclass(frozen=True)
class RegressionDataset:
    """Feature matrix + targets + provenance."""

    x: np.ndarray
    y: np.ndarray
    feature_names: Tuple[str, ...]
    #: One tag per sample, e.g. "bwaves@895mV".
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=float)
        y = np.asarray(self.y, dtype=float)
        if x.ndim != 2:
            raise DatasetError("x must be 2-D (samples x features)")
        if y.ndim != 1 or y.shape[0] != x.shape[0]:
            raise DatasetError("y must be 1-D with one target per sample")
        if len(self.feature_names) != x.shape[1]:
            raise DatasetError("feature_names must match x columns")
        if self.tags and len(self.tags) != x.shape[0]:
            raise DatasetError("tags must match sample count")
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)

    def __len__(self) -> int:
        return int(self.x.shape[0])

    def subset(self, indices: Sequence[int]) -> "RegressionDataset":
        """Row subset preserving order of ``indices``."""
        indices = list(indices)
        return RegressionDataset(
            x=self.x[indices],
            y=self.y[indices],
            feature_names=self.feature_names,
            tags=tuple(self.tags[i] for i in indices) if self.tags else (),
        )

    def select_features(self, names: Sequence[str]) -> "RegressionDataset":
        """Column subset by feature name (post-RFE restriction)."""
        missing = [n for n in names if n not in self.feature_names]
        if missing:
            raise DatasetError(f"unknown features: {missing}")
        cols = [self.feature_names.index(n) for n in names]
        return RegressionDataset(
            x=self.x[:, cols],
            y=self.y,
            feature_names=tuple(names),
            tags=self.tags,
        )

    def constant_feature_names(self) -> Tuple[str, ...]:
        """Names of zero-variance (single-valued) feature columns."""
        if len(self) == 0:
            return ()
        mask = self.x.min(axis=0) == self.x.max(axis=0)
        return tuple(
            name for name, c in zip(self.feature_names, mask) if c
        )

    def drop_constant_features(
        self,
    ) -> Tuple["RegressionDataset", Tuple[str, ...]]:
        """Drop zero-variance columns; returns (dataset, dropped names).

        Constant columns carry no ranking signal, and the estimator
        edges (RFE, cross-validation) refuse them outright -- this is
        the sanctioned way to clear them first.
        """
        dropped = self.constant_feature_names()
        if not dropped:
            return self, ()
        keep = [n for n in self.feature_names if n not in dropped]
        if not keep:
            raise DatasetError("every feature column is constant")
        return self.select_features(keep), dropped


def train_test_split(
    dataset: RegressionDataset,
    test_fraction: float = 0.2,
    seed: Optional[int] = 0,
) -> Tuple[RegressionDataset, RegressionDataset]:
    """Deterministic shuffled split; the paper uses 80 % / 20 %.

    ``seed=None`` disables shuffling (first rows train, last rows
    test), which is occasionally useful for time-ordered data.
    """
    if not 0.0 < test_fraction < 1.0:
        raise DatasetError("test_fraction must be in (0, 1)")
    n = len(dataset)
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise DatasetError(
            f"{n} samples cannot support a {test_fraction:.0%} test split"
        )
    indices = np.arange(n)
    if seed is not None:
        # reprolint: disable=RPR011 -- the literal default is the documented train/test split seed of an offline analysis API, not a campaign seed
        np.random.default_rng(seed).shuffle(indices)
    test_idx = indices[-n_test:]
    train_idx = indices[:-n_test]
    return dataset.subset(train_idx.tolist()), dataset.subset(test_idx.tolist())


# ---------------------------------------------------------------------------
# Assembly from a journaled campaign store.
# ---------------------------------------------------------------------------


def _open_store(store: StoreLike) -> "CampaignStore":
    """Accept a CampaignStore or a store directory path."""
    from ..store import CampaignStore

    if isinstance(store, CampaignStore):
        return store
    return CampaignStore.open(store)


class _ProgramProfiler:
    """Canonical per-program PMU profiles for store-backed datasets.

    Each program is profiled on a machine built fresh from the store's
    embedded spec, so the snapshot depends only on (spec, program) --
    not on how many profiles ran before it on a shared machine.  The
    profiles are cached per program name within one profiler.
    """

    def __init__(self, store: "CampaignStore") -> None:
        self._spec = store.manifest.spec
        self._cache: Dict[str, Mapping[str, float]] = {}

    def profile(self, program: Any) -> Mapping[str, float]:
        snapshot = self._cache.get(program.name)
        if snapshot is None:
            machine = self._spec.build()
            snapshot = machine.profile_program(program, core=0)
            self._cache[program.name] = snapshot
        return snapshot


def vmin_dataset_from_store(store: StoreLike, core: int) -> RegressionDataset:
    """Case-1 dataset from a store: counters -> journaled safe Vmin.

    The PMU snapshots are profiled per program on machines rebuilt
    from the store's embedded :class:`~repro.machines.MachineSpec`;
    the Vmin targets are read from the journal, so no campaign is
    re-run.  Rows follow manifest grid order regardless of the order
    the journal was appended in.
    """
    from .features import FeatureAssembler

    journal = _open_store(store)
    profiler = _ProgramProfiler(journal)
    programs = journal.manifest.programs()
    snapshots = [profiler.profile(p) for p in programs]
    targets = [
        float(journal.result_for(p.name, core).highest_vmin_mv)
        for p in programs
    ]
    return FeatureAssembler().counters_dataset(
        snapshots, targets, tags=[p.name for p in programs]
    )


def _severity_rows(
    result: Any,
    snapshot: Mapping[str, float],
    weights: Any,
    name: str,
) -> List[Tuple[Mapping[str, float], int, float, str]]:
    """All unsafe-band (snapshot, voltage, severity, tag) rows of a cell."""
    regions = result.pooled_regions()
    severity = result.severity_by_voltage(weights)
    floor = (
        regions.crash_mv - 25
        if regions.crash_mv is not None
        else regions.lowest_tested_mv
    )
    return [
        (snapshot, voltage, severity[voltage], f"{name}@{voltage}mV")
        for voltage in sorted(severity, reverse=True)
        if voltage < regions.vmin_mv and voltage >= floor
    ]


def severity_dataset_from_store(
    store: StoreLike,
    core: int,
    max_samples: Optional[int] = 100,
    seed: int = 2,
) -> RegressionDataset:
    """Case-2/3 dataset from a store: (counters, voltage) -> severity.

    Mirrors
    :meth:`~repro.prediction.pipeline.PredictionPipeline.build_severity_dataset`:
    one sample per 5 mV step below each program's safe Vmin down to 25
    mV past the crash level, deterministically shuffled and truncated
    to ``max_samples``.  Severity uses the weights pinned in the store
    manifest.  ``max_samples=None`` keeps *every* unsafe-band sample in
    manifest grid order (no shuffle) -- the exhaustive form the
    streaming trainer's batch-equivalence checks compare against.
    """
    from .features import FeatureAssembler

    journal = _open_store(store)
    profiler = _ProgramProfiler(journal)
    weights = journal.manifest.weights
    rows: List[Tuple[Mapping[str, float], int, float, str]] = []
    for prog in journal.manifest.programs():
        result = journal.result_for(prog.name, core)
        rows.extend(
            _severity_rows(result, profiler.profile(prog), weights, prog.name)
        )
    if max_samples is None:
        chosen = rows
    else:
        # reprolint: disable=RPR011 -- the literal default is the documented subsample seed of an offline analysis API, not a campaign seed
        order = np.random.default_rng(seed).permutation(len(rows))
        chosen = [rows[i] for i in order[:max_samples]]
    if len(chosen) < 2:
        raise DatasetError(
            "not enough unsafe-region samples in the store; deepen the "
            "sweep or characterize more programs"
        )
    samples = [(snap, volt, sev) for snap, volt, sev, _tag in chosen]
    tags = [tag for _snap, _volt, _sev, tag in chosen]
    return FeatureAssembler().counters_voltage_dataset(samples, tags=tags)


# ---------------------------------------------------------------------------
# Streaming cursors over the journal.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JournalBatch:
    """One grid cell's worth of training data, cut from the journal.

    ``offset`` is the number of journal records consumed once this
    batch is trained on; persisting it (see
    :class:`repro.store.models.ModelArtifact`) lets a later run resume
    the cursor with ``start=offset`` and never re-train on a record.
    """

    #: Journal cursor after this batch: records consumed so far.
    offset: int
    #: The (benchmark, core) grid cell the batch completes.
    benchmark: str
    core: int
    dataset: RegressionDataset


def iter_journal_datasets(
    store: StoreLike,
    core: int,
    start: int = 0,
    stop: Optional[int] = None,
    target: str = "vmin",
) -> Iterator[JournalBatch]:
    """Incremental datasets from the journal, resumable by offset.

    Walks journal records in append order and yields a
    :class:`JournalBatch` each time a (benchmark, ``core``) grid cell
    reaches its full campaign count -- i.e. as soon as the cell's
    target becomes well-defined.  Records for other cores advance the
    cursor without emitting samples.

    ``start`` resumes from a journal offset: cells already completed
    within ``records[:start]`` are treated as consumed and not
    re-emitted, while cells only partially covered by the prefix are
    completed (and emitted) as the cursor crosses their final record.
    ``stop`` bounds the walk for chunked replay.

    ``target`` selects the sample shape: ``"vmin"`` yields one
    counters->Vmin sample per completed cell; ``"severity"`` yields
    every unsafe-band (counters, voltage)->severity sample of the cell
    (matching ``severity_dataset_from_store(..., max_samples=None)``).
    """
    from .features import FeatureAssembler

    if target not in ("vmin", "severity"):
        raise DatasetError(f"unknown dataset target {target!r}")
    journal = _open_store(store)
    records = journal.campaigns()
    if start < 0 or start > len(records):
        raise DatasetError(
            f"journal offset {start} out of range (journal has "
            f"{len(records)} records)"
        )
    end = len(records) if stop is None else min(stop, len(records))
    needed = journal.manifest.config.campaigns
    profiler = _ProgramProfiler(journal)
    assembler = FeatureAssembler()
    programs = {p.name: p for p in journal.manifest.programs()}

    cells: Dict[str, List[Any]] = {}
    for index, record in enumerate(records[:end]):
        if record.core != core:
            continue
        cell = cells.setdefault(record.benchmark, [])
        cell.append(record)
        if len(cell) != needed:
            continue
        if index < start:
            continue  # completed within the consumed prefix
        from ..core.campaign import CharacterizationResult

        result = CharacterizationResult(
            campaigns=tuple(
                c.campaign_result()
                for c in sorted(cell, key=lambda c: c.campaign_index)
            )
        )
        program = programs[record.benchmark]
        snapshot = profiler.profile(program)
        if target == "vmin":
            dataset = assembler.counters_dataset(
                [snapshot],
                [float(result.highest_vmin_mv)],
                tags=[program.name],
            )
        else:
            rows = _severity_rows(
                result, snapshot, journal.manifest.weights, program.name
            )
            if not rows:
                continue  # cell has no unsafe-band samples to learn from
            dataset = assembler.counters_voltage_dataset(
                [(snap, volt, sev) for snap, volt, sev, _tag in rows],
                tags=[tag for _snap, _volt, _sev, tag in rows],
            )
        yield JournalBatch(
            offset=index + 1,
            benchmark=record.benchmark,
            core=core,
            dataset=dataset,
        )
