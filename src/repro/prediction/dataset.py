"""Regression datasets and the 80/20 split (Section 4.3).

A *sample* is "an information vector ... consisting of the values of
the dependent and independent variables": here a feature vector (PMU
counters, optionally plus the characterization voltage), a target
(Vmin or severity) and a metadata tag identifying its origin.

Datasets can also be assembled straight from a journaled campaign
store (:func:`vmin_dataset_from_store` /
:func:`severity_dataset_from_store`): the characterization targets
come from the journal and the PMU features from a machine rebuilt
from the store's embedded spec -- so the training box never needs the
in-memory objects of the box that ran the campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import DatasetError


@dataclass(frozen=True)
class RegressionDataset:
    """Feature matrix + targets + provenance."""

    x: np.ndarray
    y: np.ndarray
    feature_names: Tuple[str, ...]
    #: One tag per sample, e.g. "bwaves@895mV".
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=float)
        y = np.asarray(self.y, dtype=float)
        if x.ndim != 2:
            raise DatasetError("x must be 2-D (samples x features)")
        if y.ndim != 1 or y.shape[0] != x.shape[0]:
            raise DatasetError("y must be 1-D with one target per sample")
        if len(self.feature_names) != x.shape[1]:
            raise DatasetError("feature_names must match x columns")
        if self.tags and len(self.tags) != x.shape[0]:
            raise DatasetError("tags must match sample count")
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)

    def __len__(self) -> int:
        return int(self.x.shape[0])

    def subset(self, indices: Sequence[int]) -> "RegressionDataset":
        """Row subset preserving order of ``indices``."""
        indices = list(indices)
        return RegressionDataset(
            x=self.x[indices],
            y=self.y[indices],
            feature_names=self.feature_names,
            tags=tuple(self.tags[i] for i in indices) if self.tags else (),
        )

    def select_features(self, names: Sequence[str]) -> "RegressionDataset":
        """Column subset by feature name (post-RFE restriction)."""
        missing = [n for n in names if n not in self.feature_names]
        if missing:
            raise DatasetError(f"unknown features: {missing}")
        cols = [self.feature_names.index(n) for n in names]
        return RegressionDataset(
            x=self.x[:, cols],
            y=self.y,
            feature_names=tuple(names),
            tags=self.tags,
        )


def train_test_split(
    dataset: RegressionDataset,
    test_fraction: float = 0.2,
    seed: Optional[int] = 0,
) -> Tuple[RegressionDataset, RegressionDataset]:
    """Deterministic shuffled split; the paper uses 80 % / 20 %.

    ``seed=None`` disables shuffling (first rows train, last rows
    test), which is occasionally useful for time-ordered data.
    """
    if not 0.0 < test_fraction < 1.0:
        raise DatasetError("test_fraction must be in (0, 1)")
    n = len(dataset)
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise DatasetError(
            f"{n} samples cannot support a {test_fraction:.0%} test split"
        )
    indices = np.arange(n)
    if seed is not None:
        np.random.default_rng(seed).shuffle(indices)
    test_idx = indices[-n_test:]
    train_idx = indices[:-n_test]
    return dataset.subset(train_idx.tolist()), dataset.subset(test_idx.tolist())


# ---------------------------------------------------------------------------
# Assembly from a journaled campaign store.
# ---------------------------------------------------------------------------


def _open_store(store):
    """Accept a CampaignStore or a store directory path."""
    from ..store import CampaignStore

    if isinstance(store, CampaignStore):
        return store
    return CampaignStore.open(store)


def vmin_dataset_from_store(store, core: int) -> RegressionDataset:
    """Case-1 dataset from a store: counters -> journaled safe Vmin.

    The PMU snapshots are profiled on a machine rebuilt from the
    store's embedded :class:`~repro.machines.MachineSpec`; the Vmin
    targets are read from the journal, so this equals
    :meth:`~repro.prediction.pipeline.PredictionPipeline.build_vmin_dataset`
    over the same grid without re-running any campaign.
    """
    from .features import FeatureAssembler

    journal = _open_store(store)
    machine = journal.manifest.spec.build()
    programs = journal.manifest.programs()
    snapshots = [machine.profile_program(p, core=0) for p in programs]
    targets = [
        float(journal.result_for(p.name, core).highest_vmin_mv)
        for p in programs
    ]
    return FeatureAssembler().counters_dataset(
        snapshots, targets, tags=[p.name for p in programs]
    )


def severity_dataset_from_store(
    store, core: int, max_samples: int = 100, seed: int = 2
) -> RegressionDataset:
    """Case-2/3 dataset from a store: (counters, voltage) -> severity.

    Mirrors
    :meth:`~repro.prediction.pipeline.PredictionPipeline.build_severity_dataset`:
    one sample per 5 mV step below each program's safe Vmin down to 25
    mV past the crash level, deterministically shuffled and truncated
    to ``max_samples``.  Severity uses the weights pinned in the store
    manifest.
    """
    from .features import FeatureAssembler

    journal = _open_store(store)
    machine = journal.manifest.spec.build()
    weights = journal.manifest.weights
    rows: List[Tuple[Mapping[str, float], int, float, str]] = []
    for prog in journal.manifest.programs():
        result = journal.result_for(prog.name, core)
        snapshot = machine.profile_program(prog, core=0)
        regions = result.pooled_regions()
        severity = result.severity_by_voltage(weights)
        floor = (
            regions.crash_mv - 25
            if regions.crash_mv is not None
            else regions.lowest_tested_mv
        )
        for voltage in sorted(severity, reverse=True):
            if voltage < regions.vmin_mv and voltage >= floor:
                rows.append(
                    (snapshot, voltage, severity[voltage],
                     f"{prog.name}@{voltage}mV")
                )
    order = np.random.default_rng(seed).permutation(len(rows))
    chosen = [rows[i] for i in order[:max_samples]]
    if len(chosen) < 2:
        raise DatasetError(
            "not enough unsafe-region samples in the store; deepen the "
            "sweep or characterize more programs"
        )
    samples = [(snap, volt, sev) for snap, volt, sev, _tag in chosen]
    tags = [tag for _snap, _volt, _sev, tag in chosen]
    return FeatureAssembler().counters_voltage_dataset(samples, tags=tags)
