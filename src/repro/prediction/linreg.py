"""Least-squares regression (Section 4): batch OLS and streaming RLS.

    y_i = b0 + b1*x1_i + ... + bk*xk_i + e_i

:class:`OrdinaryLeastSquares` implements the paper's offline fit from
the definition with a numerically robust least-squares solve
(``numpy.linalg.lstsq`` on the design matrix, which handles the
rank-deficient designs that raw PMU counters produce -- many of the 101
events are near-linear combinations of each other).

:class:`OnlineLeastSquares` is its streaming counterpart: a
recursive-least-squares estimator over accumulated sufficient
statistics (sample count, feature sums, Gram matrix, cross moments).
``partial_fit`` folds journal records in as they land; ``solve``
standardises from the accumulated moments and solves the *same* normal
equations a batch refit on the identical sample prefix would solve, so
the two models agree to floating-point accumulation order (the
equivalence the streaming pipeline's property tests pin with an rtol).

Features are internally standardised (zero mean, unit variance over the
training set) so the fitted weights are comparable across features;
that comparability is what Recursive Feature Elimination ranks on.
Coefficients are reported in both spaces.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import DatasetError, PredictionError


#: Tikhonov damping used for RFE ranking fits, relative to the
#: per-sample standardised Gram diagonal (which is 1 by construction).
#: Plain min-norm OLS is discontinuous at rank changes, so on
#: rank-deficient designs (fewer samples than surviving PMU events) the
#: data-space and normal-equation solvers can return different -- yet
#: equally valid -- coefficient vectors.  A tiny shared damping makes
#: the ranking weights a continuous function of the sufficient
#: statistics, so the batch and streaming elimination paths agree.
RFE_RIDGE_ALPHA = 1e-6


class OrdinaryLeastSquares:
    """OLS regression with internal feature standardisation.

    ``ridge_alpha > 0`` switches the solve to Tikhonov-damped normal
    equations in standardised space -- the estimator Recursive Feature
    Elimination ranks with (see :data:`RFE_RIDGE_ALPHA`).  The default
    ``ridge_alpha = 0`` keeps the paper's plain least-squares fit.
    """

    def __init__(self, ridge_alpha: float = 0.0) -> None:
        if ridge_alpha < 0.0:
            raise PredictionError("ridge_alpha must be non-negative")
        self.ridge_alpha = float(ridge_alpha)
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None
        self._beta_std: Optional[np.ndarray] = None
        self._intercept_std: float = 0.0
        self.feature_names: Optional[Sequence[str]] = None

    # -- fitting ---------------------------------------------------------

    @staticmethod
    def _check_xy(x: Any, y: Any) -> Tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise DatasetError("X must be 2-D (samples x features)")
        if y.ndim != 1:
            raise DatasetError("y must be 1-D")
        if x.shape[0] != y.shape[0]:
            raise DatasetError(
                f"X has {x.shape[0]} samples but y has {y.shape[0]}"
            )
        if x.shape[0] == 0:
            raise DatasetError("cannot fit on zero samples")
        return x, y

    def fit(self, x: Any, y: Any, feature_names: Optional[Sequence[str]] = None
            ) -> "OrdinaryLeastSquares":
        """Fit the model; returns self for chaining."""
        x, y = self._check_xy(x, y)
        if feature_names is not None and len(feature_names) != x.shape[1]:
            raise DatasetError("feature_names length must match X columns")
        self.feature_names = tuple(feature_names) if feature_names else None

        self._mean = x.mean(axis=0)
        scale = x.std(axis=0)
        scale[scale == 0.0] = 1.0  # constant features carry no signal
        self._scale = scale
        x_std = (x - self._mean) / self._scale

        if self.ridge_alpha > 0.0:
            # Damped normal equations; the standardised columns are
            # centred, so the (unpenalised) intercept decouples to the
            # target mean -- exactly the streaming solve's convention.
            gram = x_std.T @ x_std
            gram[np.diag_indices_from(gram)] += self.ridge_alpha * x.shape[0]
            self._beta_std = np.linalg.solve(gram, x_std.T @ y)
            self._intercept_std = float(y.mean())
        else:
            design = np.hstack([np.ones((x_std.shape[0], 1)), x_std])
            solution, _residuals, _rank, _sv = np.linalg.lstsq(
                design, y, rcond=None
            )
            self._intercept_std = float(solution[0])
            self._beta_std = solution[1:]
        return self

    @property
    def is_fitted(self) -> bool:
        return self._beta_std is not None

    def _require_fit(self) -> None:
        if not self.is_fitted:
            raise PredictionError("model must be fitted before use")

    # -- inference ----------------------------------------------------------

    def predict(self, x: Any) -> np.ndarray:
        """Predict targets for a feature matrix."""
        self._require_fit()
        assert self._mean is not None and self._scale is not None
        assert self._beta_std is not None
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.shape[1] != self._mean.shape[0]:
            raise DatasetError(
                f"X has {x.shape[1]} features; model expects {self._mean.shape[0]}"
            )
        x_std = (x - self._mean) / self._scale
        return self._intercept_std + x_std @ self._beta_std

    # -- coefficients ----------------------------------------------------------

    @property
    def standardized_coef(self) -> np.ndarray:
        """Weights in standardised feature space (RFE ranks on these)."""
        self._require_fit()
        assert self._beta_std is not None
        return self._beta_std.copy()

    @property
    def coef(self) -> np.ndarray:
        """Weights in the original feature units."""
        self._require_fit()
        assert self._beta_std is not None and self._scale is not None
        return self._beta_std / self._scale

    @property
    def intercept(self) -> float:
        """Intercept in the original feature units."""
        self._require_fit()
        assert self._beta_std is not None
        assert self._mean is not None and self._scale is not None
        return float(self._intercept_std - np.sum(self._beta_std * self._mean / self._scale))

    def coefficients_by_name(self) -> Dict[str, float]:
        """{feature: original-space weight}; requires feature names."""
        self._require_fit()
        if self.feature_names is None:
            raise PredictionError("model was fitted without feature names")
        return dict(zip(self.feature_names, self.coef))


class OnlineLeastSquares:
    """Streaming least squares over recursively accumulated moments.

    The estimator never stores sample rows.  ``partial_fit`` updates

    * ``n``       -- sample count,
    * ``sx``      -- per-feature sums,
    * ``sy``/``syy`` -- target sum and sum of squares,
    * ``sxx``     -- the k x k Gram matrix of feature cross products,
    * ``sxy``     -- feature/target cross products,
    * ``lo``/``hi`` -- per-feature running minima/maxima (used to
      detect zero-variance columns exactly, the way a batch fit sees
      them),

    which together are the sufficient statistics of the least-squares
    problem.  :meth:`solve` standardises from the moments and solves
    the centred normal equations with a minimum-norm least-squares
    solve, matching :class:`OrdinaryLeastSquares` on the same sample
    prefix up to floating-point accumulation order.

    The whole state round-trips through :meth:`to_json_dict` /
    :meth:`from_json_dict`, which is what lets a killed training run
    resume from a journal offset without replaying consumed records.
    """

    def __init__(self, feature_names: Sequence[str]) -> None:
        if not feature_names:
            raise DatasetError("OnlineLeastSquares needs named features")
        self.feature_names: Tuple[str, ...] = tuple(
            str(name) for name in feature_names
        )
        k = len(self.feature_names)
        self._n: int = 0
        self._sx = np.zeros(k)
        self._sy: float = 0.0
        self._syy: float = 0.0
        self._sxx = np.zeros((k, k))
        self._sxy = np.zeros(k)
        self._lo = np.full(k, np.inf)
        self._hi = np.full(k, -np.inf)
        self._solved: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, float]] = None

    # -- streaming updates -------------------------------------------------

    @property
    def n_samples(self) -> int:
        return self._n

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    @property
    def is_fitted(self) -> bool:
        return self._n > 0

    def partial_fit(self, x: Any, y: Any) -> "OnlineLeastSquares":
        """Fold a sample block (or a single row) into the moments."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if y.ndim == 0:
            y = y.reshape(1)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
            raise DatasetError(
                "partial_fit needs X (samples x features) with one target "
                "per sample"
            )
        if x.shape[1] != self.n_features:
            raise DatasetError(
                f"X has {x.shape[1]} features; estimator tracks "
                f"{self.n_features}"
            )
        if x.shape[0] == 0:
            return self
        self._n += int(x.shape[0])
        self._sx += x.sum(axis=0)
        self._sy += float(y.sum())
        self._syy += float(y @ y)
        self._sxx += x.T @ x
        self._sxy += x.T @ y
        self._lo = np.minimum(self._lo, x.min(axis=0))
        self._hi = np.maximum(self._hi, x.max(axis=0))
        self._solved = None
        return self

    def constant_features(self) -> Tuple[str, ...]:
        """Features that have shown exactly one value so far."""
        if self._n == 0:
            return ()
        return tuple(
            name for name, lo, hi in zip(self.feature_names, self._lo, self._hi)
            if lo == hi
        )

    # -- solving -----------------------------------------------------------

    def _require_fit(self) -> None:
        if self._n == 0:
            raise PredictionError("model must be fitted before use")

    def _standardized_moments(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, float]:
        """(mean, scale, gram_std, b_std, y_mean) from the moments."""
        self._require_fit()
        n = float(self._n)
        mean = self._sx / n
        # Centred second moments; exact-constant columns (min == max)
        # are forced to zero variance so the scale-1 convention matches
        # a batch fit's two-pass std on the same rows.
        variance = np.maximum(self._sxx.diagonal() / n - mean**2, 0.0)
        variance[self._lo == self._hi] = 0.0
        scale = np.sqrt(variance)
        scale[scale == 0.0] = 1.0
        y_mean = self._sy / n
        gram_centred = self._sxx - n * np.outer(mean, mean)
        gram_std = gram_centred / np.outer(scale, scale)
        b_centred = self._sxy - mean * self._sy
        b_std = b_centred / scale
        return mean, scale, gram_std, b_std, float(y_mean)

    def _solve(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        """(mean, scale, beta_std, intercept_std) from the moments."""
        if self._solved is not None:
            return self._solved
        mean, scale, gram_std, b_std, y_mean = self._standardized_moments()
        beta_std, _residuals, _rank, _sv = np.linalg.lstsq(
            gram_std, b_std, rcond=None
        )
        self._solved = (mean, scale, beta_std, y_mean)
        return self._solved

    def ridge_standardized_coef(self, alpha: float) -> np.ndarray:
        """Tikhonov-damped standardised weights from the moments.

        Solves ``(G_std + alpha * n * I) beta = b_std`` -- the same
        damped system :class:`OrdinaryLeastSquares` with ``ridge_alpha``
        solves from sample rows, so batch and streaming RFE rank on
        matching weights even when the undamped fit is rank-deficient.
        """
        if alpha <= 0.0:
            raise PredictionError("ridge alpha must be positive")
        _mean, _scale, gram_std, b_std, _y_mean = self._standardized_moments()
        gram = gram_std.copy()
        gram[np.diag_indices_from(gram)] += float(alpha) * self._n
        return np.linalg.solve(gram, b_std)

    def subset(self, indices: Sequence[int]) -> "OnlineLeastSquares":
        """A view of the moments restricted to the given columns.

        Fitting a column subset is a pure slice of the accumulated
        statistics -- no sample rows are needed -- which is what lets
        Recursive Feature Elimination run against a streaming model
        (:meth:`repro.prediction.rfe.RecursiveFeatureElimination.fit_online`).
        """
        cols = [int(i) for i in indices]
        if not cols:
            raise DatasetError("subset needs at least one column")
        if any(c < 0 or c >= self.n_features for c in cols):
            raise DatasetError(f"column index out of range: {cols}")
        view = OnlineLeastSquares([self.feature_names[c] for c in cols])
        view._n = self._n
        view._sx = self._sx[cols].copy()
        view._sy = self._sy
        view._syy = self._syy
        view._sxx = self._sxx[np.ix_(cols, cols)].copy()
        view._sxy = self._sxy[cols].copy()
        view._lo = self._lo[cols].copy()
        view._hi = self._hi[cols].copy()
        return view

    # -- inference ---------------------------------------------------------

    def predict(self, x: Any) -> np.ndarray:
        """Predict targets for a feature matrix."""
        mean, scale, beta_std, intercept_std = self._solve()
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.shape[1] != self.n_features:
            raise DatasetError(
                f"X has {x.shape[1]} features; model expects {self.n_features}"
            )
        x_std = (x - mean) / scale
        return intercept_std + x_std @ beta_std

    # -- coefficients ------------------------------------------------------

    @property
    def standardized_coef(self) -> np.ndarray:
        """Weights in standardised feature space (RFE ranks on these)."""
        _mean, _scale, beta_std, _icpt = self._solve()
        return beta_std.copy()

    @property
    def coef(self) -> np.ndarray:
        """Weights in the original feature units."""
        _mean, scale, beta_std, _icpt = self._solve()
        return beta_std / scale

    @property
    def intercept(self) -> float:
        """Intercept in the original feature units."""
        mean, scale, beta_std, intercept_std = self._solve()
        return float(intercept_std - np.sum(beta_std * mean / scale))

    def coefficients_by_name(self) -> Dict[str, float]:
        """{feature: original-space weight}."""
        return dict(zip(self.feature_names, self.coef))

    # -- in-sample metrics from the moments --------------------------------

    def residual_rmse(self) -> float:
        """In-sample RMSE of the solved model, from the moments alone.

        ``SSE = yTy - 2 bT s_xy~ + bT G~ b`` over the centred/
        standardised system, without touching any sample row.
        """
        mean, scale, beta_std, _icpt = self._solve()
        n = float(self._n)
        y_mean = self._sy / n
        syy_centred = self._syy - n * y_mean**2
        gram_centred = self._sxx - n * np.outer(mean, mean)
        gram_std = gram_centred / np.outer(scale, scale)
        b_std = (self._sxy - mean * self._sy) / scale
        sse = syy_centred - 2.0 * beta_std @ b_std + beta_std @ gram_std @ beta_std
        return float(np.sqrt(max(sse, 0.0) / n))

    def target_mean(self) -> float:
        """Running mean of the targets (the naive baseline's estimate)."""
        self._require_fit()
        return float(self._sy / self._n)

    def target_rmse(self) -> float:
        """In-sample RMSE of the naive mean predictor (target stddev)."""
        self._require_fit()
        n = float(self._n)
        y_mean = self._sy / n
        return float(np.sqrt(max(self._syy / n - y_mean**2, 0.0)))

    # -- state round-trip --------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of the full estimator state."""
        return {
            "feature_names": list(self.feature_names),
            "n": self._n,
            "sx": self._sx.tolist(),
            "sy": self._sy,
            "syy": self._syy,
            "sxx": self._sxx.tolist(),
            "sxy": self._sxy.tolist(),
            "lo": [None if not np.isfinite(v) else float(v) for v in self._lo],
            "hi": [None if not np.isfinite(v) else float(v) for v in self._hi],
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "OnlineLeastSquares":
        """Inverse of :meth:`to_json_dict`; exact (bitwise) state."""
        try:
            model = cls([str(n) for n in data["feature_names"]])
            k = model.n_features
            model._n = int(data["n"])
            model._sx = np.asarray(data["sx"], dtype=float)
            model._sy = float(data["sy"])
            model._syy = float(data["syy"])
            model._sxx = np.asarray(data["sxx"], dtype=float)
            model._sxy = np.asarray(data["sxy"], dtype=float)
            lo: List[float] = [
                float("inf") if v is None else float(v) for v in data["lo"]
            ]
            hi: List[float] = [
                float("-inf") if v is None else float(v) for v in data["hi"]
            ]
            model._lo = np.asarray(lo, dtype=float)
            model._hi = np.asarray(hi, dtype=float)
        except (KeyError, TypeError, ValueError) as exc:
            raise PredictionError(f"malformed online-estimator state: {exc}")
        if (
            model._sx.shape != (k,)
            or model._sxx.shape != (k, k)
            or model._sxy.shape != (k,)
            or model._lo.shape != (k,)
            or model._hi.shape != (k,)
        ):
            raise PredictionError(
                "online-estimator state arrays do not match feature count"
            )
        return model
