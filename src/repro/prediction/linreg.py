"""Ordinary-least-squares linear regression (Section 4).

    y_i = b0 + b1*x1_i + ... + bk*xk_i + e_i

implemented from the definition with a numerically robust least-squares
solve (``numpy.linalg.lstsq`` on the design matrix, which handles the
rank-deficient designs that raw PMU counters produce -- many of the 101
events are near-linear combinations of each other).

Features are internally standardised (zero mean, unit variance over the
training set) so the fitted weights are comparable across features;
that comparability is what Recursive Feature Elimination ranks on.
Coefficients are reported in both spaces.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import DatasetError, PredictionError


class OrdinaryLeastSquares:
    """OLS regression with internal feature standardisation."""

    def __init__(self) -> None:
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None
        self._beta_std: Optional[np.ndarray] = None
        self._intercept_std: float = 0.0
        self.feature_names: Optional[Sequence[str]] = None

    # -- fitting ---------------------------------------------------------

    @staticmethod
    def _check_xy(x, y):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise DatasetError("X must be 2-D (samples x features)")
        if y.ndim != 1:
            raise DatasetError("y must be 1-D")
        if x.shape[0] != y.shape[0]:
            raise DatasetError(
                f"X has {x.shape[0]} samples but y has {y.shape[0]}"
            )
        if x.shape[0] == 0:
            raise DatasetError("cannot fit on zero samples")
        return x, y

    def fit(self, x, y, feature_names: Optional[Sequence[str]] = None
            ) -> "OrdinaryLeastSquares":
        """Fit the model; returns self for chaining."""
        x, y = self._check_xy(x, y)
        if feature_names is not None and len(feature_names) != x.shape[1]:
            raise DatasetError("feature_names length must match X columns")
        self.feature_names = tuple(feature_names) if feature_names else None

        self._mean = x.mean(axis=0)
        scale = x.std(axis=0)
        scale[scale == 0.0] = 1.0  # constant features carry no signal
        self._scale = scale
        x_std = (x - self._mean) / self._scale

        design = np.hstack([np.ones((x_std.shape[0], 1)), x_std])
        solution, _residuals, _rank, _sv = np.linalg.lstsq(design, y, rcond=None)
        self._intercept_std = float(solution[0])
        self._beta_std = solution[1:]
        return self

    @property
    def is_fitted(self) -> bool:
        return self._beta_std is not None

    def _require_fit(self) -> None:
        if not self.is_fitted:
            raise PredictionError("model must be fitted before use")

    # -- inference ----------------------------------------------------------

    def predict(self, x) -> np.ndarray:
        """Predict targets for a feature matrix."""
        self._require_fit()
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.shape[1] != self._mean.shape[0]:
            raise DatasetError(
                f"X has {x.shape[1]} features; model expects {self._mean.shape[0]}"
            )
        x_std = (x - self._mean) / self._scale
        return self._intercept_std + x_std @ self._beta_std

    # -- coefficients ----------------------------------------------------------

    @property
    def standardized_coef(self) -> np.ndarray:
        """Weights in standardised feature space (RFE ranks on these)."""
        self._require_fit()
        return self._beta_std.copy()

    @property
    def coef(self) -> np.ndarray:
        """Weights in the original feature units."""
        self._require_fit()
        return self._beta_std / self._scale

    @property
    def intercept(self) -> float:
        """Intercept in the original feature units."""
        self._require_fit()
        return float(self._intercept_std - np.sum(self._beta_std * self._mean / self._scale))

    def coefficients_by_name(self) -> dict:
        """{feature: original-space weight}; requires feature names."""
        self._require_fit()
        if self.feature_names is None:
            raise PredictionError("model was fitted without feature names")
        return dict(zip(self.feature_names, self.coef))
