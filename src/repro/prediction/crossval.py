"""Cross-validation and cross-core transfer for the prediction models.

Two generalisation questions the paper raises but evaluates only with a
single 80/20 split:

* **k-fold cross-validation** -- how stable are the RMSE/R-squared
  numbers across splits?  (The Vmin study's "R-squared close to 0" is
  split-sensitive; CV quantifies that.)
* **cross-core transfer** (Section 4.4: the model "can fit effectively
  for each core, taking into account the process variation") -- train
  on one core's samples, predict another core's after compensating the
  known variation offset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..errors import DatasetError
from .dataset import RegressionDataset
from .linreg import OrdinaryLeastSquares
from .metrics import r2_score, rmse


@dataclass(frozen=True)
class CrossValidationReport:
    """Per-fold and aggregate metrics of a k-fold run."""

    k: int
    fold_rmse: Tuple[float, ...]
    fold_r2: Tuple[float, ...]

    @property
    def mean_rmse(self) -> float:
        return float(np.mean(self.fold_rmse))

    @property
    def std_rmse(self) -> float:
        return float(np.std(self.fold_rmse))

    @property
    def mean_r2(self) -> float:
        return float(np.mean(self.fold_r2))

    @property
    def r2_range(self) -> Tuple[float, float]:
        return (min(self.fold_r2), max(self.fold_r2))


def kfold_cross_validate(
    dataset: RegressionDataset,
    k: int = 5,
    model_factory: Optional[Callable[[], OrdinaryLeastSquares]] = None,
    seed: int = 0,
) -> CrossValidationReport:
    """k-fold CV of an OLS-style model over a dataset."""
    if k < 2:
        raise DatasetError("k must be at least 2")
    n = len(dataset)
    if n < k:
        raise DatasetError(f"{n} samples cannot form {k} folds")
    constant_mask = dataset.x.min(axis=0) == dataset.x.max(axis=0)
    if constant_mask.any():
        constant = [
            name for name, c in zip(dataset.feature_names, constant_mask) if c
        ]
        raise DatasetError(
            f"zero-variance feature columns cannot be cross-validated: "
            f"{sorted(constant)}; drop constant features first"
        )
    model_factory = model_factory or OrdinaryLeastSquares

    indices = np.arange(n)
    # reprolint: disable=RPR011 -- the literal default is the documented fold-shuffle seed of an offline analysis API, not a campaign seed
    np.random.default_rng(seed).shuffle(indices)
    folds = np.array_split(indices, k)

    fold_rmse: List[float] = []
    fold_r2: List[float] = []
    for fold in folds:
        test_idx = set(int(i) for i in fold)
        train_rows = [i for i in range(n) if i not in test_idx]
        test_rows = [int(i) for i in fold]
        train = dataset.subset(train_rows)
        test = dataset.subset(test_rows)
        model = model_factory()
        model.fit(train.x, train.y, feature_names=dataset.feature_names)
        predictions = model.predict(test.x)
        fold_rmse.append(rmse(test.y, predictions))
        fold_r2.append(r2_score(test.y, predictions))
    return CrossValidationReport(
        k=k, fold_rmse=tuple(fold_rmse), fold_r2=tuple(fold_r2))


@dataclass(frozen=True)
class TransferReport:
    """Cross-core transfer outcome."""

    source_core: int
    target_core: int
    offset_mv: float
    rmse_transferred: float
    rmse_native: float

    @property
    def transfer_penalty(self) -> float:
        """Extra error of the transferred model vs a natively trained
        one (can be ~0 when variation is purely an offset)."""
        return self.rmse_transferred - self.rmse_native


def cross_core_transfer(
    source: RegressionDataset,
    target: RegressionDataset,
    source_core: int,
    target_core: int,
    offset_mv: float,
    model_factory: Optional[Callable[[], OrdinaryLeastSquares]] = None,
) -> TransferReport:
    """Train on one core's Vmin samples, evaluate on another's.

    ``offset_mv`` is the known process-variation gap between the cores
    (from the characterization); the transferred prediction is
    ``model(source features) + offset``.
    """
    if source.feature_names != target.feature_names:
        raise DatasetError("source and target must share the feature space")
    model_factory = model_factory or OrdinaryLeastSquares

    transferred = model_factory()
    transferred.fit(source.x, source.y, feature_names=source.feature_names)
    predictions = transferred.predict(target.x) + offset_mv
    rmse_transferred = rmse(target.y, predictions)

    native = model_factory()
    native.fit(target.x, target.y, feature_names=target.feature_names)
    rmse_native = rmse(target.y, native.predict(target.x))

    return TransferReport(
        source_core=source_core,
        target_core=target_core,
        offset_mv=float(offset_mv),
        rmse_transferred=rmse_transferred,
        rmse_native=rmse_native,
    )
