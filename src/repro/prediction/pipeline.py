"""The four-phase prediction flow of Figure 6.

``PredictionPipeline`` wires a simulated machine into the paper's
offline-training / online-prediction loop:

1. *Characterization* -- run undervolting campaigns to obtain Vmin and
   severity tables (:mod:`repro.core`).
2. *Profiling* -- collect all 101 PMU events per program at nominal
   conditions.
3. *Model training* -- RFE to the five most informative events, then
   OLS on the 80 % training split.
4. *Prediction* -- held-out evaluation: R-squared, RMSE, and the naive
   mean baseline.

The three canonical studies of Section 4.3 are one call each:
``vmin_study`` (case 1), and ``severity_study`` on the most sensitive
core (case 2) or the most robust core (case 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..core.campaign import CharacterizationResult
from ..core.framework import CharacterizationFramework, FrameworkConfig
from ..core.severity import DEFAULT_WEIGHTS, SeverityWeights
from ..errors import DatasetError, PredictionError
from ..machines import Machine
from ..workloads.benchmark import Benchmark, Program
from .dataset import RegressionDataset, train_test_split
from .features import VOLTAGE_FEATURE, FeatureAssembler
from .linreg import OrdinaryLeastSquares
from .metrics import r2_score, rmse
from .naive import NaiveMeanPredictor
from .rfe import RecursiveFeatureElimination


@dataclass(frozen=True)
class PredictionReport:
    """Outcome of one study: model vs naive on a held-out test set."""

    target: str
    chip: str
    core: int
    selected_features: Tuple[str, ...]
    r2: float
    rmse_model: float
    rmse_naive: float
    n_train: int
    n_test: int
    #: (tag, truth, prediction) for every test sample (Figures 7/8).
    test_points: Tuple[Tuple[str, float, float], ...] = ()

    @property
    def improvement_over_naive(self) -> float:
        """How many times smaller the model's RMSE is vs the baseline."""
        if self.rmse_model == 0:
            return float("inf")
        return self.rmse_naive / self.rmse_model

    def summary(self) -> str:
        """One-line human-readable result."""
        return (
            f"{self.target} on {self.chip} core {self.core}: "
            f"RMSE {self.rmse_model:.2f} (naive {self.rmse_naive:.2f}), "
            f"R^2 {self.r2:.2f}, features {', '.join(self.selected_features)}"
        )


@dataclass
class SeverityStudy:
    """Configuration of a severity study (cases 2 and 3)."""

    core: int
    max_samples: int = 100
    weights: SeverityWeights = field(default_factory=lambda: DEFAULT_WEIGHTS)


@dataclass
class VminStudy:
    """Configuration of a Vmin study (case 1)."""

    core: int


class PredictionPipeline:
    """Figure-6 flow bound to one machine."""

    def __init__(
        self,
        machine: Machine,
        characterization: Optional[FrameworkConfig] = None,
        n_features: int = 5,
        test_fraction: float = 0.2,
        split_seed: int = 2,
        rfe_step: int = 8,
    ) -> None:
        self.machine = machine
        # Three campaign repetitions keep the study fast while retaining
        # the non-determinism the severity function aggregates; sweeps
        # record several crash levels so the severity ramp reaches its
        # SC plateau.  The paper's full ten campaigns are available by
        # passing an explicit config.
        self.characterization = characterization or FrameworkConfig(
            campaigns=3, stop_after_crash_levels=5
        )
        self.n_features = int(n_features)
        self.test_fraction = float(test_fraction)
        self.split_seed = int(split_seed)
        self.rfe_step = int(rfe_step)
        self.assembler = FeatureAssembler()
        self._profile_cache: Dict[str, Mapping[str, float]] = {}
        self._characterization_cache: Dict[Tuple[str, int], CharacterizationResult] = {}

    # -- phase 2: profiling -------------------------------------------------

    def profile(self, program: object) -> Mapping[str, float]:
        """Nominal-conditions PMU profile of one program (cached)."""
        program = self._as_program(program)
        if program.name not in self._profile_cache:
            with telemetry.span("prediction.profile", benchmark=program.name):
                if self.machine.state.value != "running":
                    self.machine.power_on()
                self._profile_cache[program.name] = self.machine.profile_program(
                    program, core=0
                )
            telemetry.inc_counter(telemetry.M_PREDICTION_PROFILES)
        return self._profile_cache[program.name]

    # -- phase 1: characterization -----------------------------------------------

    def characterize(self, program: object, core: int) -> CharacterizationResult:
        """Characterization result of one program on one core (cached)."""
        program = self._as_program(program)
        key = (program.name, core)
        if key not in self._characterization_cache:
            with telemetry.span(
                "prediction.characterize", benchmark=program.name, core=core
            ):
                if self.machine.state.value != "running":
                    self.machine.power_on()
                framework = CharacterizationFramework(
                    self.machine, self.characterization
                )
                self._characterization_cache[key] = framework.characterize(
                    program, core
                )
            telemetry.inc_counter(telemetry.M_PREDICTION_CHARACTERIZATIONS)
        return self._characterization_cache[key]

    # -- dataset assembly -------------------------------------------------------------

    def build_vmin_dataset(
        self, programs: Sequence[object], core: int
    ) -> RegressionDataset:
        """One sample per program: counters -> observed safe Vmin."""
        programs = [self._as_program(p) for p in programs]
        snapshots = [self.profile(p) for p in programs]
        targets = [
            float(self.characterize(p, core).highest_vmin_mv) for p in programs
        ]
        return self.assembler.counters_dataset(
            snapshots, targets, tags=[p.name for p in programs]
        )

    def build_severity_dataset(
        self,
        programs: Sequence[object],
        core: int,
        max_samples: int = 100,
        weights: SeverityWeights = DEFAULT_WEIGHTS,
    ) -> RegressionDataset:
        """Beyond-Vmin samples: (counters, voltage) -> severity.

        One sample per 5 mV characterization step below each program's
        safe Vmin (Section 4.3.2), spanning the whole severity ramp the
        way Figures 7/8 do (their test points reach severity 16, i.e.
        the samples extend through the unsafe band into the upper crash
        region).  A deterministic shuffle truncates to ``max_samples``
        without biasing toward any depth.
        """
        programs = [self._as_program(p) for p in programs]
        rows: List[Tuple[Mapping[str, float], int, float, str]] = []
        for prog in programs:
            result = self.characterize(prog, core)
            snapshot = self.profile(prog)
            regions = result.pooled_regions()
            severity = result.severity_by_voltage(weights)
            floor = (
                regions.crash_mv - 25
                if regions.crash_mv is not None
                else regions.lowest_tested_mv
            )
            for voltage in sorted(severity, reverse=True):
                if voltage < regions.vmin_mv and voltage >= floor:
                    rows.append(
                        (snapshot, voltage, severity[voltage],
                         f"{prog.name}@{voltage}mV")
                    )
        order = np.random.default_rng(self.split_seed).permutation(len(rows))
        chosen = [rows[i] for i in order[:max_samples]]
        if len(chosen) < 2:
            raise DatasetError(
                "not enough unsafe-region samples; widen the sweep or add programs"
            )
        samples = [(snap, volt, sev) for snap, volt, sev, _tag in chosen]
        tags = [tag for _snap, _volt, _sev, tag in chosen]
        return self.assembler.counters_voltage_dataset(samples, tags=tags)

    # -- phases 3 & 4: training and evaluation --------------------------------------------

    def evaluate(
        self,
        dataset: RegressionDataset,
        target: str,
        core: int,
        forced_features: Tuple[str, ...] = (),
    ) -> PredictionReport:
        """RFE + OLS on the 80 % split, metrics on the held-out 20 %.

        ``forced_features`` are excluded from elimination and always
        kept (the severity studies force the voltage feature; the five
        RFE slots then go to PMU events, matching the paper's "5 most
        efficient events" framing).
        """
        train, test = train_test_split(
            dataset, test_fraction=self.test_fraction, seed=self.split_seed
        )
        # Zero-variance columns (on the training split) carry no
        # ranking signal and RFE refuses them; clear them first.
        constant = set(train.constant_feature_names()) - set(forced_features)
        eliminable = [
            name
            for name in dataset.feature_names
            if name not in forced_features and name not in constant
        ]
        rfe = RecursiveFeatureElimination(
            n_features=self.n_features, step=self.rfe_step
        )
        train_eliminable = train.select_features(eliminable)
        result = rfe.fit(
            train_eliminable.x, train_eliminable.y, train_eliminable.feature_names
        )
        selected = tuple(result.selected) + tuple(forced_features)

        model = OrdinaryLeastSquares()
        train_sel = train.select_features(selected)
        test_sel = test.select_features(selected)
        model.fit(train_sel.x, train_sel.y, feature_names=selected)
        predictions = model.predict(test_sel.x)

        naive = NaiveMeanPredictor().fit(train_sel.x, train_sel.y)
        naive_predictions = naive.predict(test_sel.x)

        tags = test.tags if test.tags else tuple(
            f"sample-{i}" for i in range(len(test))
        )
        r2 = r2_score(test_sel.y, predictions)
        rmse_model = rmse(test_sel.y, predictions)
        telemetry.event(
            "prediction.report",
            target=target,
            core=core,
            r2=float(r2),
            rmse_model=float(rmse_model),
        )
        return PredictionReport(
            target=target,
            chip=self.machine.chip.name,
            core=core,
            selected_features=selected,
            r2=r2,
            rmse_model=rmse_model,
            rmse_naive=rmse(test_sel.y, naive_predictions),
            n_train=len(train_sel.y),
            n_test=len(test_sel.y),
            test_points=tuple(
                (tag, float(truth), float(pred))
                for tag, truth, pred in zip(tags, test_sel.y, predictions)
            ),
        )

    # -- the canonical studies ----------------------------------------------------------

    def vmin_study(self, programs: Sequence[object], core: int) -> PredictionReport:
        """Case 1: predict a core's per-program safe Vmin."""
        dataset = self.build_vmin_dataset(programs, core)
        return self.evaluate(dataset, target="vmin_mv", core=core)

    def severity_study(
        self,
        programs: Sequence[object],
        core: int,
        max_samples: int = 100,
        weights: SeverityWeights = DEFAULT_WEIGHTS,
    ) -> PredictionReport:
        """Cases 2/3: predict severity at (program, voltage) points."""
        dataset = self.build_severity_dataset(
            programs, core, max_samples=max_samples, weights=weights
        )
        return self.evaluate(
            dataset, target="severity", core=core,
            forced_features=(VOLTAGE_FEATURE,),
        )

    # -- misc ---------------------------------------------------------------------------------

    @staticmethod
    def _as_program(workload: object) -> Program:
        if isinstance(workload, Program):
            return workload
        if isinstance(workload, Benchmark):
            return workload.programs()[0]
        raise PredictionError(
            f"expected a Program or Benchmark, got {type(workload).__name__}"
        )


# ---------------------------------------------------------------------------
# Batch fits on whole datasets (the streaming trainer's reference).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FittedModel:
    """An RFE + OLS model trained on *all* rows of one dataset.

    This is the from-scratch counterpart of a streaming
    :class:`~repro.prediction.streaming.StreamingTrainer` fit: the
    trainer's online selection and coefficients must match a
    ``batch_fit`` on the same sample set to floating-point tolerance.
    Unlike :meth:`PredictionPipeline.evaluate` there is no held-out
    split -- a served model uses every journaled sample.
    """

    target: str
    core: int
    #: Surviving features (forced features appended), in column order.
    selected_features: Tuple[str, ...]
    #: Zero-variance columns removed before elimination.
    dropped_constant: Tuple[str, ...]
    model: OrdinaryLeastSquares
    naive_mean: float
    n_samples: int
    rmse_train: float
    rmse_naive: float

    def predict(self, dataset: RegressionDataset) -> np.ndarray:
        """Predict targets for a full-feature-space dataset."""
        return self.model.predict(
            dataset.select_features(self.selected_features).x
        )


def batch_fit(
    dataset: RegressionDataset,
    target: str,
    core: int,
    n_features: int = 5,
    rfe_step: int = 8,
    forced_features: Tuple[str, ...] = (),
) -> FittedModel:
    """RFE + OLS over every row of ``dataset`` (no held-out split)."""
    constant = tuple(
        name
        for name in dataset.constant_feature_names()
        if name not in forced_features
    )
    eliminable = [
        name
        for name in dataset.feature_names
        if name not in forced_features and name not in constant
    ]
    sub = dataset.select_features(eliminable)
    rfe = RecursiveFeatureElimination(n_features=n_features, step=rfe_step)
    selected = tuple(
        rfe.fit(sub.x, sub.y, sub.feature_names).selected
    ) + tuple(forced_features)
    chosen = dataset.select_features(selected)
    model = OrdinaryLeastSquares().fit(
        chosen.x, chosen.y, feature_names=selected
    )
    naive = NaiveMeanPredictor().fit(chosen.x, chosen.y)
    return FittedModel(
        target=target,
        core=core,
        selected_features=selected,
        dropped_constant=constant,
        model=model,
        naive_mean=naive.mean,
        n_samples=len(dataset),
        rmse_train=rmse(chosen.y, model.predict(chosen.x)),
        rmse_naive=rmse(chosen.y, naive.predict(chosen.x)),
    )


def fit_vmin_model_from_store(
    store: object,
    core: int,
    n_features: int = 5,
    rfe_step: int = 8,
) -> FittedModel:
    """From-scratch Vmin model over a completed store's full grid."""
    from .dataset import vmin_dataset_from_store

    dataset = vmin_dataset_from_store(store, core)
    return batch_fit(
        dataset, target="vmin", core=core,
        n_features=n_features, rfe_step=rfe_step,
    )


def fit_severity_model_from_store(
    store: object,
    core: int,
    n_features: int = 5,
    rfe_step: int = 8,
) -> FittedModel:
    """From-scratch severity model over every unsafe-band sample."""
    from .dataset import severity_dataset_from_store

    dataset = severity_dataset_from_store(store, core, max_samples=None)
    return batch_fit(
        dataset, target="severity", core=core,
        n_features=n_features, rfe_step=rfe_step,
        forced_features=(VOLTAGE_FEATURE,),
    )
