"""The naive baseline predictor (Section 4.3).

Predicts the mean of the training targets for every input -- "the
average of the target values (Vmin or severity) of the samples of the
training set".  The paper's headline comparison: for Vmin this baseline
is as good as the linear model; for severity it is 2.3-2.6x worse.
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError, PredictionError


class NaiveMeanPredictor:
    """Constant-mean predictor."""

    def __init__(self) -> None:
        self._mean: float = 0.0
        self._fitted = False

    def fit(self, x, y, feature_names=None) -> "NaiveMeanPredictor":
        """Record the training-target mean (features are ignored)."""
        y = np.asarray(y, dtype=float)
        if y.ndim != 1 or y.size == 0:
            raise DatasetError("y must be a non-empty 1-D array")
        self._mean = float(np.mean(y))
        self._fitted = True
        return self

    @property
    def mean(self) -> float:
        if not self._fitted:
            raise PredictionError("predictor must be fitted before use")
        return self._mean

    def predict(self, x) -> np.ndarray:
        """Predict the stored mean for every row of ``x``."""
        if not self._fitted:
            raise PredictionError("predictor must be fitted before use")
        x = np.asarray(x, dtype=float)
        n_rows = x.shape[0] if x.ndim >= 1 else 1
        return np.full(n_rows, self._mean)
