"""Streaming model training from the campaign journal.

:class:`StreamingTrainer` is the incremental counterpart of a
from-scratch :func:`~repro.prediction.pipeline.batch_fit`: it consumes
journal records through :func:`~repro.prediction.dataset.iter_journal_datasets`
cursors, folds each completed grid cell into a recursive-least-squares
:class:`~repro.prediction.linreg.OnlineLeastSquares`, and on demand
runs Recursive Feature Elimination directly against the accumulated
moments (:meth:`~repro.prediction.rfe.RecursiveFeatureElimination.fit_online`).
Selection and coefficients match a batch refit on the same sample set
to floating-point accumulation order.

Drift is tracked *prequentially* (test-then-train): every incoming
batch is first scored against the current model and the running naive
baseline, then trained on.  The two gauges
:data:`~repro.telemetry.M_MODEL_RMSE` and
:data:`~repro.telemetry.M_MODEL_DRIFT` expose the accumulated
prequential RMSE and its ratio to the naive baseline -- a ratio
climbing toward 1 means the model is no better than predicting the
mean, i.e. the relationship drifted.

The full trainer state (moments, consumed training pairs, prequential
accumulators, journal offset) round-trips through the
``repro-model/v1`` artifact (:mod:`repro.store.models`), so a killed
``repro train`` resumes exactly where it stopped without replaying
consumed records.
"""

from __future__ import annotations

from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from .. import telemetry
from ..data.counters import COUNTER_NAMES
from ..errors import PredictionError
from .dataset import StoreLike, _open_store, iter_journal_datasets
from .features import VOLTAGE_FEATURE
from .linreg import OnlineLeastSquares
from .rfe import RecursiveFeatureElimination

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..store import FleetStore
    from ..store.models import ModelArtifact

#: Targets the trainer knows how to cut from the journal.
TRAINABLE_TARGETS = ("vmin", "severity")

#: A fleet store or the directory path of one.
FleetLike = Union["FleetStore", str, Path]


def _feature_space(target: str) -> Tuple[str, ...]:
    """Full model input space for one target."""
    if target == "vmin":
        return tuple(COUNTER_NAMES)
    if target == "severity":
        return tuple(COUNTER_NAMES) + (VOLTAGE_FEATURE,)
    raise PredictionError(f"unknown training target {target!r}")


class StreamingTrainer:
    """Incremental RFE + RLS training bound to one (store, core, target)."""

    def __init__(
        self,
        store: StoreLike,
        core: int,
        target: str = "vmin",
        n_features: int = 5,
        rfe_step: int = 8,
    ) -> None:
        if target not in TRAINABLE_TARGETS:
            raise PredictionError(
                f"unknown training target {target!r}; "
                f"expected one of {TRAINABLE_TARGETS}"
            )
        self.store = _open_store(store)
        self.core = int(core)
        self.target = target
        self.n_features = int(n_features)
        self.rfe_step = int(rfe_step)
        self.forced_features: Tuple[str, ...] = (
            (VOLTAGE_FEATURE,) if target == "severity" else ()
        )
        self.journal_offset = 0
        self._estimator = OnlineLeastSquares(_feature_space(target))
        self._train_pairs: List[Tuple[str, float]] = []
        self._sse_model = 0.0
        self._sse_naive = 0.0
        self._n_eval = 0

    # -- progress ----------------------------------------------------------

    @property
    def n_samples(self) -> int:
        return self._estimator.n_samples

    @property
    def prequential_rmse(self) -> Optional[float]:
        """Accumulated test-then-train RMSE of the model, if any."""
        if self._n_eval == 0:
            return None
        return float(np.sqrt(self._sse_model / self._n_eval))

    @property
    def prequential_naive_rmse(self) -> Optional[float]:
        """Accumulated test-then-train RMSE of the naive baseline."""
        if self._n_eval == 0:
            return None
        return float(np.sqrt(self._sse_naive / self._n_eval))

    @property
    def drift_ratio(self) -> Optional[float]:
        """Model/naive prequential RMSE ratio (1.0 = no better)."""
        model = self.prequential_rmse
        naive = self.prequential_naive_rmse
        if model is None or naive is None or naive == 0.0:
            return None
        return model / naive

    def refresh(self) -> None:
        """Re-open the store directory to see newly journaled records."""
        from ..store import CampaignStore

        self.store = CampaignStore.open(self.store.directory)

    # -- streaming consumption ---------------------------------------------

    def consume(self, stop: Optional[int] = None) -> int:
        """Train on journal records landed since the cursor; returns
        the number of grid-cell batches folded in.

        Each batch is scored against the current model before being
        trained on (prequential evaluation), which is what feeds the
        drift gauges without needing a held-out split.
        """
        consumed = 0
        for batch in iter_journal_datasets(
            self.store,
            self.core,
            start=self.journal_offset,
            stop=stop,
            target=self.target,
        ):
            self._fold_batch(batch)
            self.journal_offset = batch.offset
            consumed += 1
        return consumed

    def _fold_batch(self, batch: Any) -> None:
        """Score (prequentially) then train on one grid-cell batch.

        Shared by the single-store cursor and the per-shard fleet
        cursors: where the batch came from does not change how it folds
        into the moments, which is why one model can train from a whole
        fleet.
        """
        dataset = batch.dataset
        if self._estimator.n_samples >= 2:
            predictions = self._estimator.predict(dataset.x)
            self._sse_model += float(
                np.sum((dataset.y - predictions) ** 2)
            )
            naive = self._estimator.target_mean()
            self._sse_naive += float(np.sum((dataset.y - naive) ** 2))
            self._n_eval += len(dataset)
            self._publish_drift()
        self._estimator.partial_fit(dataset.x, dataset.y)
        tags = dataset.tags or tuple(
            f"{batch.benchmark}#{i}" for i in range(len(dataset))
        )
        self._train_pairs.extend(
            (tag, float(y)) for tag, y in zip(tags, dataset.y)
        )

    def _publish_drift(self) -> None:
        model = self.prequential_rmse
        if model is not None:
            telemetry.set_gauge(
                telemetry.M_MODEL_RMSE, model,
                target=self.target, core=str(self.core),
            )
        drift = self.drift_ratio
        if drift is not None:
            telemetry.set_gauge(
                telemetry.M_MODEL_DRIFT, drift,
                target=self.target, core=str(self.core),
            )

    # -- fitting ------------------------------------------------------------

    def _selection(self) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """(selected features incl. forced, dropped constant columns)."""
        constant = tuple(
            name
            for name in self._estimator.constant_features()
            if name not in self.forced_features
        )
        eliminable = [
            i
            for i, name in enumerate(self._estimator.feature_names)
            if name not in self.forced_features and name not in constant
        ]
        if self._estimator.n_samples < 2 or len(eliminable) <= self.n_features:
            return (), constant  # journal too shallow to select yet
        rfe = RecursiveFeatureElimination(
            n_features=self.n_features, step=self.rfe_step
        )
        result = rfe.fit_online(self._estimator.subset(eliminable))
        return tuple(result.selected) + self.forced_features, constant

    def fit(self) -> "ModelArtifact":
        """Solve the current moments into an unversioned model artifact.

        Returns a :class:`repro.store.models.ModelArtifact` carrying
        the model (when the journal is deep enough to select features)
        plus the full trainer state; persist it with
        ``store.model_store().save(artifact)``.
        """
        from ..store.models import ModelArtifact, train_set_digest

        selected, constant = self._selection()
        coefficients: Dict[str, float] = {}
        intercept = 0.0
        naive_mean = 0.0
        metrics: Dict[str, float] = {}
        if self.n_samples:
            naive_mean = self._estimator.target_mean()
            metrics["rmse_naive"] = self._estimator.target_rmse()
        if selected:
            index = {
                name: i
                for i, name in enumerate(self._estimator.feature_names)
            }
            final = self._estimator.subset([index[n] for n in selected])
            coefficients = final.coefficients_by_name()
            intercept = final.intercept
            metrics["rmse_train"] = final.residual_rmse()
        if self.prequential_rmse is not None:
            metrics["prequential_rmse"] = self.prequential_rmse
        if self.prequential_naive_rmse is not None:
            metrics["prequential_naive_rmse"] = self.prequential_naive_rmse
        if self.drift_ratio is not None:
            metrics["drift"] = self.drift_ratio
        return ModelArtifact(
            target=self.target,
            core=self.core,
            version=0,
            journal_offset=self.journal_offset,
            spec_digest=self.store.manifest.spec.digest(),
            feature_names=self._estimator.feature_names,
            selected_features=selected,
            dropped_constant=constant,
            coefficients=coefficients,
            intercept=intercept,
            naive_mean=naive_mean,
            n_samples=self.n_samples,
            train_digest=train_set_digest(self._train_pairs),
            metrics=metrics,
            trainer_state={
                "n_features": self.n_features,
                "rfe_step": self.rfe_step,
                "estimator": self._estimator.to_json_dict(),
                "train_pairs": [[tag, y] for tag, y in self._train_pairs],
                "prequential": {
                    "sse_model": self._sse_model,
                    "sse_naive": self._sse_naive,
                    "n_eval": self._n_eval,
                },
            },
        )

    # -- kill-and-resume ----------------------------------------------------

    @classmethod
    def resume(
        cls, store: StoreLike, artifact: "ModelArtifact"
    ) -> "StreamingTrainer":
        """Rebuild a trainer from a saved artifact's state.

        The resumed trainer continues the journal cursor at
        ``artifact.journal_offset``; records consumed before the save
        are never replayed.
        """
        journal = _open_store(store)
        if artifact.spec_digest != journal.manifest.spec.digest():
            raise PredictionError(
                "model artifact was trained against a different machine "
                "spec than this campaign store"
            )
        state: Mapping[str, Any] = artifact.trainer_state
        try:
            trainer = cls(
                journal,
                core=artifact.core,
                target=artifact.target,
                n_features=int(state["n_features"]),
                rfe_step=int(state["rfe_step"]),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise PredictionError(
                f"model artifact carries unusable trainer state: {exc}"
            )
        trainer._restore_state(state)
        trainer.journal_offset = artifact.journal_offset
        return trainer

    def _restore_state(self, state: Mapping[str, Any]) -> None:
        """Load moments + prequential accumulators from artifact state."""
        try:
            self._estimator = OnlineLeastSquares.from_json_dict(
                state["estimator"]
            )
            self._train_pairs = [
                (str(tag), float(y)) for tag, y in state["train_pairs"]
            ]
            prequential = state["prequential"]
            self._sse_model = float(prequential["sse_model"])
            self._sse_naive = float(prequential["sse_naive"])
            self._n_eval = int(prequential["n_eval"])
        except (KeyError, ValueError, TypeError) as exc:
            raise PredictionError(
                f"model artifact carries unusable trainer state: {exc}"
            )


class FleetStreamingTrainer(StreamingTrainer):
    """One incremental model trained from every shard of a fleet.

    The single-store trainer holds one journal cursor; this one holds
    a cursor **per shard** and folds each shard's
    :class:`~repro.prediction.dataset.JournalBatch` stream into the
    same recursive-least-squares moments, so the fitted model spans the
    whole machine population -- the paper's fleet framing, where one
    operator model predicts margins across heterogeneous chips.

    Artifacts pin :meth:`~repro.store.FleetStore.fleet_digest` instead
    of a single machine-spec digest and persist into the fleet-level
    model store (``FleetStore.model_store()``); the per-shard cursors
    ride along in ``trainer_state``, so kill-and-resume never replays a
    consumed record on any shard.
    """

    def __init__(
        self,
        fleet: "FleetLike",
        core: int,
        target: str = "vmin",
        n_features: int = 5,
        rfe_step: int = 8,
    ) -> None:
        from ..store import FleetStore

        self.fleet = (
            fleet if isinstance(fleet, FleetStore) else FleetStore.open(fleet)
        )
        first = self.fleet.shard(self.fleet.manifest.shards[0])
        super().__init__(first, core, target, n_features, rfe_step)
        #: Per-shard journal cursors, keyed by shard name.
        self.cursors: Dict[str, int] = {
            entry.name: 0 for entry in self.fleet.manifest.shards
        }

    def refresh(self) -> None:
        """No-op: :meth:`consume` re-opens every shard from disk."""

    def consume(self, stop: Optional[int] = None) -> int:
        """Advance every shard cursor; returns batches folded in.

        Shards are walked in fleet-manifest order and each is re-opened
        from disk first, so records appended by other processes (the
        per-shard campaign runners) are picked up without any shared
        state beyond the journals themselves.
        """
        from ..store import CampaignStore

        consumed = 0
        for entry in self.fleet.manifest.shards:
            shard = CampaignStore.open(self.fleet.shard_path(entry))
            for batch in iter_journal_datasets(
                shard,
                self.core,
                start=self.cursors[entry.name],
                stop=stop,
                target=self.target,
            ):
                self._fold_batch(batch)
                self.cursors[entry.name] = batch.offset
                consumed += 1
        self.journal_offset = sum(self.cursors.values())
        return consumed

    def fit(self) -> "ModelArtifact":
        """Fleet model artifact: fleet digest + per-shard cursors."""
        import dataclasses

        artifact = super().fit()
        state = dict(artifact.trainer_state)
        state["fleet_cursors"] = dict(self.cursors)
        return dataclasses.replace(
            artifact,
            spec_digest=self.fleet.fleet_digest(),
            journal_offset=self.journal_offset,
            trainer_state=state,
        )

    @classmethod
    def resume(  # type: ignore[override]
        cls, store: "FleetLike", artifact: "ModelArtifact"
    ) -> "FleetStreamingTrainer":
        """Rebuild a fleet trainer from a saved artifact's state."""
        from ..store import FleetStore

        fleet = (
            store if isinstance(store, FleetStore) else FleetStore.open(store)
        )
        if artifact.spec_digest != fleet.fleet_digest():
            raise PredictionError(
                "model artifact was trained against a different fleet "
                "(machine population changed)"
            )
        state: Mapping[str, Any] = artifact.trainer_state
        try:
            trainer = cls(
                fleet,
                core=artifact.core,
                target=artifact.target,
                n_features=int(state["n_features"]),
                rfe_step=int(state["rfe_step"]),
            )
            cursors = {
                str(name): int(offset)
                for name, offset in dict(state["fleet_cursors"]).items()
            }
        except (KeyError, ValueError, TypeError) as exc:
            raise PredictionError(
                f"model artifact carries unusable trainer state: {exc}"
            )
        unknown = set(cursors) - set(trainer.cursors)
        if unknown:
            raise PredictionError(
                f"model artifact references unknown fleet shards "
                f"{sorted(unknown)}"
            )
        trainer._restore_state(state)
        trainer.cursors.update(cursors)
        trainer.journal_offset = artifact.journal_offset
        return trainer


__all__ = [
    "FleetStreamingTrainer",
    "StreamingTrainer",
    "TRAINABLE_TARGETS",
]
