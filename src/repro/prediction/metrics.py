"""Regression quality metrics (Section 4): R-squared and RMSE.

Both implemented from their definitions; the paper quotes both for
every test case, because R-squared alone is misleading when the target
barely varies (the Vmin case: RMSE of 5 mV yet R-squared near 0).
"""

from __future__ import annotations

import numpy as np

from ..errors import PredictionError


def _check_pair(y_true, y_pred):
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.ndim != 1 or y_pred.ndim != 1:
        raise PredictionError("metric inputs must be 1-D arrays")
    if y_true.shape != y_pred.shape:
        raise PredictionError(
            f"shape mismatch: {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise PredictionError("metric inputs must be non-empty")
    return y_true, y_pred


def rmse(y_true, y_pred) -> float:
    """Root mean square error: deviation of predictions from truth."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination.

    1 is a perfect fit; 0 means the model is no better than predicting
    the mean; negative means worse than the mean ("the model can be
    arbitrary worse", Section 4).  A constant target with a perfect
    prediction scores 1; constant target with any error scores 0 (the
    conventional degenerate-case choice).
    """
    y_true, y_pred = _check_pair(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - np.mean(y_true)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot
