"""Feature assembly: PMU snapshots -> regression feature matrices.

Counter magnitudes span nine orders (cycles vs barriers), so features
are normalised per kilo-instruction before entering the model --
run-length-invariant rates, which is also what makes profiles of
different programs comparable.  Severity samples additionally carry the
characterization voltage as a feature (Section 4.3.2: each sample
"consists of the microarchitectural counters ... and the voltage value
of the characterization step").
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..data.counters import COUNTER_NAMES
from ..errors import DatasetError
from .dataset import RegressionDataset

#: Name of the appended supply-voltage feature.
VOLTAGE_FEATURE = "VOLTAGE_MV"


class FeatureAssembler:
    """Builds :class:`RegressionDataset` objects from PMU snapshots."""

    def __init__(self, per_kilo_instruction: bool = True) -> None:
        self.per_kilo_instruction = bool(per_kilo_instruction)

    def _vector(self, snapshot: Mapping[str, float]) -> np.ndarray:
        missing = [name for name in COUNTER_NAMES if name not in snapshot]
        if missing:
            raise DatasetError(f"snapshot missing events: {missing[:3]}...")
        values = np.array([float(snapshot[name]) for name in COUNTER_NAMES])
        if self.per_kilo_instruction:
            instructions = float(snapshot["INST_RETIRED"])
            if instructions <= 0:
                raise DatasetError("INST_RETIRED must be positive to normalise")
            values = values / instructions * 1000.0
        return values

    def vector_by_name(
        self,
        snapshot: Mapping[str, float],
        voltage_mv: Optional[int] = None,
    ) -> Dict[str, float]:
        """One sample as a feature-name -> value mapping.

        The serving-side counterpart of the dataset builders: model
        artifacts (:meth:`repro.store.models.ModelArtifact.predict_row`)
        consume exactly this shape.  ``voltage_mv`` appends the voltage
        feature for severity models.
        """
        values = self._vector(snapshot)
        names = list(COUNTER_NAMES)
        if voltage_mv is not None:
            values = np.concatenate([values, [float(voltage_mv)]])
            names.append(VOLTAGE_FEATURE)
        return dict(zip(names, (float(v) for v in values)))

    def counters_dataset(
        self,
        snapshots: Sequence[Mapping[str, float]],
        targets: Sequence[float],
        tags: Optional[Sequence[str]] = None,
    ) -> RegressionDataset:
        """Dataset of counter features only (the Vmin study shape)."""
        if len(snapshots) != len(targets):
            raise DatasetError("one target per snapshot required")
        x = np.vstack([self._vector(s) for s in snapshots])
        return RegressionDataset(
            x=x,
            y=np.asarray(targets, dtype=float),
            feature_names=tuple(COUNTER_NAMES),
            tags=tuple(tags) if tags else (),
        )

    def counters_voltage_dataset(
        self,
        samples: Sequence[Tuple[Mapping[str, float], int, float]],
        tags: Optional[Sequence[str]] = None,
    ) -> RegressionDataset:
        """Dataset of (counters, voltage) -> target samples (severity).

        ``samples`` are (snapshot, voltage_mv, target) triples.
        """
        if not samples:
            raise DatasetError("need at least one sample")
        x_rows: List[np.ndarray] = []
        y: List[float] = []
        for snapshot, voltage_mv, target in samples:
            row = np.concatenate([self._vector(snapshot), [float(voltage_mv)]])
            x_rows.append(row)
            y.append(float(target))
        return RegressionDataset(
            x=np.vstack(x_rows),
            y=np.asarray(y, dtype=float),
            feature_names=tuple(COUNTER_NAMES) + (VOLTAGE_FEATURE,),
            tags=tuple(tags) if tags else (),
        )


def importance_report(
    feature_names: Sequence[str], standardized_coef: Sequence[float]
) -> List[Tuple[str, float]]:
    """Features sorted by |standardised weight|, descending.

    "Our model reports the impact of any architectural event that
    contributes to prediction, classified by its importance"
    (Section 4.2).
    """
    if len(feature_names) != len(standardized_coef):
        raise DatasetError("names and coefficients must align")
    pairs = [
        (name, float(weight))
        for name, weight in zip(feature_names, standardized_coef)
    ]
    return sorted(pairs, key=lambda pair: abs(pair[1]), reverse=True)
