"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Hardware-simulation faults that model
*machine* misbehaviour (crashes, hangs) are deliberately **not** Python
exceptions leaking out of the simulator -- they are reported as run
outcomes -- but programming/usage errors are raised eagerly through the
classes below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An experiment or hardware configuration value is invalid."""


class VoltageRangeError(ConfigurationError):
    """A requested supply voltage is outside the regulator's range or
    not aligned to the regulator's step size."""


class FrequencyRangeError(ConfigurationError):
    """A requested frequency is outside the PLL range or not a multiple
    of the supported step."""


class UnknownBenchmarkError(ReproError):
    """A benchmark or program name was not found in the suite."""


class UnknownCounterError(ReproError):
    """A performance-counter event name is not one of the 101 events
    exposed by the simulated PMU."""


class MachineStateError(ReproError):
    """The simulated machine is in the wrong state for the requested
    operation (e.g. launching a program on a powered-off machine)."""


class WatchdogError(ReproError):
    """The watchdog monitor could not recover the machine."""


class CampaignError(ReproError):
    """A characterization campaign was mis-specified or its results are
    incomplete for the requested analysis."""


class StoreError(CampaignError):
    """A campaign/fleet store on disk is unusable: corrupt manifest or
    journal, mismatched spec digest, unroutable shard, or a compaction
    that would invalidate live cursors.

    Subclasses :class:`CampaignError` so existing callers that catch
    the broader class keep working; new store-layer code should raise
    and catch this one."""


class ParseError(ReproError):
    """A characterization log could not be parsed."""


class PredictionError(ReproError):
    """A prediction model was used before fitting, or fed malformed
    samples."""


class DatasetError(PredictionError):
    """A regression dataset is malformed (shape mismatch, too few
    samples to split, ...)."""


class EccError(ReproError):
    """Invalid use of the ECC codecs (wrong word width, ...)."""
