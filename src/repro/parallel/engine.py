"""The parallel campaign engine.

The paper's characterization took six months of wall-clock time because
thousands of (benchmark, core, voltage) runs execute serially on one
board.  In simulation that constraint disappears: campaigns are
embarrassingly parallel -- each owns its machine and its RNG stream --
so the engine fans the (workload, core, campaign) grid out over a
process pool.

Determinism is the design anchor.  Every task's machine seed is derived
from the parent seed and the task's stable coordinates (see
:mod:`repro.parallel.tasks`), so the engine produces **bit-identical**
results for any worker count, backend or chunking -- ``jobs=4`` equals
``jobs=1`` equals any future run of the same grid.

Scheduling is chunked (one pickle round-trip per chunk, not per
campaign), worker crashes are retried once by re-running the lost chunk
in-process, and a :class:`~repro.parallel.progress.ProgressReporter`
hook surfaces completed/total/ETA to the CLI and examples.
"""

from __future__ import annotations

import warnings
from concurrent.futures import FIRST_COMPLETED, Executor, Future, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .. import telemetry
from ..core.campaign import CampaignResult, CharacterizationResult
from ..core.framework import FrameworkConfig
from ..errors import CampaignError, ConfigurationError
from ..machines import MachineSpec, as_machine_spec
from ..store import (
    FLEET_MANIFEST_NAME,
    MANIFEST_NAME,
    CampaignStore,
    FleetStore,
)
from ..workloads.benchmark import Benchmark, Program
from .progress import NULL_PROGRESS, ProgressReporter, ProgressTracker
from .tasks import (
    CampaignTask,
    CampaignTaskResult,
    derive_task_seed,
    run_campaign_chunk,
)

#: Supported execution backends.
BACKENDS = ("auto", "process", "thread", "serial")


@dataclass(frozen=True)
class EngineReport:
    """Outcome of one engine run: the grid plus execution metadata."""

    #: (benchmark, core) -> the assembled characterization.
    results: Dict[Tuple[str, int], CharacterizationResult]
    #: Raw campaign logs keyed like
    #: :attr:`CharacterizationFramework.raw_logs`.
    raw_logs: Dict[Tuple[str, int, int, int], str]
    #: Total watchdog recoveries performed by the workers.
    interventions: int
    #: Number of campaign tasks executed.
    tasks_run: int
    #: Scheduling chunks retried in-process after a worker failure.
    chunks_retried: int
    #: Backend that actually executed the grid.
    backend: str
    #: Worker count the grid ran with (1 for the serial backend).
    jobs: int
    #: Tasks replayed from a campaign-store journal instead of executed
    #: (0 for runs without a store or with an empty journal).
    tasks_skipped: int = 0


class ParallelCampaignEngine:
    """Fans a characterization grid out over a worker pool.

    Parameters
    ----------
    spec:
        The machine blueprint every worker rebuilds: a
        :class:`~repro.machines.MachineSpec`, a chip name/chip, or a
        machine (captured via ``to_spec()``).  Specs cover every
        registered extension model, so droop/aging/adaptive-clocking
        machines parallelize like nominal ones.
    config:
        The framework configuration (schedule, runs per level,
        campaign count) applied to every grid cell.
    jobs:
        Worker count.  ``1`` executes serially in-process (the
        reference ordering); higher values enable the pool.
    backend:
        ``"process"`` / ``"thread"`` / ``"serial"`` / ``"auto"``.
        Auto picks processes for ``jobs > 1`` and falls back to
        threads when process pools are unavailable (restricted
        environments), then to serial execution.
    chunk_size:
        Tasks per scheduling chunk; ``None`` sizes chunks to roughly
        four per worker, which keeps the pool busy without paying one
        IPC round-trip per campaign.
    progress:
        Optional :class:`ProgressReporter`; the default is a no-op.
    use_kernel:
        Let workers use the batch kernel (:mod:`repro.core.kernel`)
        when their machine compiles; results are bit-identical either
        way, so this is a performance switch, not a semantic one.
    """

    #: Grids smaller than this never spin up a pool under ``auto``.
    MIN_POOL_TASKS = 2

    def __init__(
        self,
        spec: MachineSpec,
        config: FrameworkConfig = FrameworkConfig(),
        jobs: int = 1,
        backend: str = "auto",
        chunk_size: Optional[int] = None,
        progress: ProgressReporter = NULL_PROGRESS,
        use_kernel: bool = True,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        self.spec = as_machine_spec(spec)
        self.config = config
        self.jobs = int(jobs)
        self.backend = backend
        self.chunk_size = chunk_size
        self.progress = progress
        self.use_kernel = bool(use_kernel)

    # -- task grid --------------------------------------------------------

    def tasks_for(
        self, workloads: Sequence[object], cores: Sequence[int]
    ) -> List[CampaignTask]:
        """The deterministic task list of a grid.

        Ordering is (workload, core, campaign) -- the same order the
        serial framework executes -- and each task carries its derived
        seed, so the list is independent of how it will be scheduled.
        """
        tasks: List[CampaignTask] = []
        for workload in workloads:
            program = self._as_program(workload)
            for core in cores:
                for campaign_index in range(1, self.config.campaigns + 1):
                    tasks.append(
                        CampaignTask(
                            program=program,
                            core=core,
                            campaign_index=campaign_index,
                            seed=derive_task_seed(
                                self.spec.seed, program.name, core,
                                campaign_index,
                            ),
                        )
                    )
        return tasks

    # -- execution --------------------------------------------------------

    def run(
        self,
        workloads: Sequence[object],
        cores: Sequence[int],
        store: Optional[Union[str, Path, CampaignStore, FleetStore]] = None,
        resume: bool = False,
    ) -> EngineReport:
        """Characterize every workload on every core.

        With ``store`` the run is journaled: each completed (workload,
        core, campaign) task is appended to the campaign store as it
        finishes, so a killed run loses at most the in-flight chunk.
        A :class:`~repro.store.FleetStore` routes the journal to the
        shard owning this engine's machine spec.
        With ``resume=True`` journaled tasks are replayed from the
        store (after verifying their seeds against a fresh derivation)
        and only the remainder executes -- the assembled report is
        bit-identical to an uninterrupted run of the same grid.
        """
        tasks = self.tasks_for(workloads, cores)
        if not tasks:
            raise ConfigurationError("empty grid: no workloads or no cores")
        journal = self._prepare_store(store, tasks, cores, resume)
        replayed = self._replay_journal(journal, tasks) if resume else []
        done = {(o.benchmark, o.core, o.campaign_index) for o in replayed}
        pending = [
            task for task in tasks
            if (task.program.name, task.core, task.campaign_index) not in done
        ]
        backend = self._resolve_backend(len(pending)) if pending else "serial"
        collect = self._tracing_enabled()
        with telemetry.span(
            "engine.run",
            tasks=len(tasks),
            pending=len(pending),
            backend=backend,
            jobs=self.jobs,
        ):
            tracker = ProgressTracker(len(tasks), self.progress)
            if replayed:
                tracker.advance(len(replayed))
                telemetry.inc_counter(
                    telemetry.M_TASKS_SKIPPED, amount=len(replayed)
                )
                telemetry.event("engine.replay", tasks=len(replayed))
            self._sample_tsdb(journal)
            checkpoint = self._checkpointer(journal)
            chunks = self._chunk(pending)
            retried = 0
            if backend == "serial":
                outcomes: List[CampaignTaskResult] = []
                for chunk in chunks:
                    chunk_started = telemetry.clock()
                    chunk_outcomes = run_campaign_chunk(
                        self.spec, self.config, chunk, collect, self.use_kernel
                    )
                    telemetry.observe(
                        telemetry.M_CHUNK_SECONDS,
                        telemetry.clock() - chunk_started,
                    )
                    checkpoint(chunk, chunk_outcomes)
                    self._record_outcomes(chunk_outcomes)
                    self._sample_tsdb(journal)
                    outcomes.extend(chunk_outcomes)
                    tracker.advance(len(chunk))
            else:
                outcomes, retried = self._run_pool(
                    backend, chunks, tracker, checkpoint, collect,
                    journal=journal,
                )
            tracker.finish()
            # Final snapshot after finish() so the run's published
            # throughput gauge lands in the time-series journal.
            self._sample_tsdb(journal)
        return self._assemble(
            tasks, replayed + outcomes, backend, retried,
            tasks_skipped=len(replayed),
        )

    # -- checkpointing -----------------------------------------------------

    def _prepare_store(
        self,
        store: Optional[Union[str, Path, CampaignStore, FleetStore]],
        tasks: List[CampaignTask],
        cores: Sequence[int],
        resume: bool,
    ) -> Optional[CampaignStore]:
        """Open/create the journal for this grid and validate it.

        A :class:`FleetStore` (or a path holding a ``fleet.json``)
        routes by this engine's machine-spec digest to the fleet shard
        that owns it; everything downstream -- checkpointing, replay,
        resume -- then runs against that shard exactly as it would
        against a standalone store, which is why a fleet of N machines
        resumes bit-identically to N independent runs.
        """
        if store is None:
            if resume:
                raise ConfigurationError("resume=True requires a store")
            return None
        workload_names = list(dict.fromkeys(t.program.name for t in tasks))
        if isinstance(store, FleetStore):
            journal = store.shard_for(self.spec)
        elif isinstance(store, CampaignStore):
            journal = store
        else:
            directory = Path(store)
            if (directory / FLEET_MANIFEST_NAME).exists():
                journal = FleetStore.open(directory).shard_for(self.spec)
            elif (directory / MANIFEST_NAME).exists():
                journal = CampaignStore.open(directory)
            elif resume:
                raise CampaignError(f"no campaign store to resume at {directory}")
            else:
                journal = CampaignStore.create(
                    directory, self.spec, self.config, workload_names, cores
                )
        journal.validate_run(self.spec, self.config, workload_names, cores)
        if journal.completed_keys() and not resume:
            raise CampaignError(
                f"store at {journal.directory} already journals "
                f"{len(journal.completed_keys())} tasks; pass resume=True "
                f"(or run `repro resume`) to continue it"
            )
        return journal

    def _replay_journal(
        self, journal: Optional[CampaignStore], tasks: List[CampaignTask]
    ) -> List[CampaignTaskResult]:
        """Journaled campaigns as task results, seeds re-verified.

        Replayed lines must carry exactly the seed this engine would
        derive for the task today; anything else means the journal was
        recorded under different seed material and cannot be spliced
        into a bit-identical grid.
        """
        if journal is None:
            return []
        by_key = {
            (t.program.name, t.core, t.campaign_index): t for t in tasks
        }
        replayed: List[CampaignTaskResult] = []
        for stored in journal.campaigns():
            task = by_key[stored.key]
            if stored.seed != task.seed:
                raise CampaignError(
                    f"journaled task {stored.key!r} ran with seed "
                    f"{stored.seed}, but this grid derives {task.seed}; "
                    f"the store belongs to different seed material"
                )
            replayed.append(
                CampaignTaskResult(
                    benchmark=stored.benchmark,
                    core=stored.core,
                    campaign_index=stored.campaign_index,
                    result=stored.campaign_result(),
                    raw_log=stored.raw_log,
                    freq_mhz=stored.freq_mhz,
                    interventions=stored.interventions,
                )
            )
        return replayed

    def _checkpointer(
        self, journal: Optional[CampaignStore]
    ) -> Callable[[Tuple[CampaignTask, ...], Tuple[CampaignTaskResult, ...]], None]:
        """Journal a completed chunk's outcomes (no-op without a store)."""
        def checkpoint(
            chunk: Tuple[CampaignTask, ...],
            outcomes: Tuple[CampaignTaskResult, ...],
        ) -> None:
            if journal is None:
                return
            for task, outcome in zip(chunk, outcomes):
                journal.append_campaign(
                    outcome.result,
                    outcome.raw_log,
                    task.seed,
                    outcome.interventions,
                )
        return checkpoint

    @staticmethod
    def _tracing_enabled() -> bool:
        """Whether workers should record spans for the ambient tracer."""
        session = telemetry.current_session()
        return session is not None and session.tracer is not None

    @staticmethod
    def _sample_tsdb(journal: Optional[CampaignStore]) -> None:
        """Snapshot the registry into the journal directory's tsdb.

        No-op without a journal or without an ambient tsdb sampler
        (``--tsdb``); sampling happens only after durable checkpoints,
        so the time-series journal never observes in-flight state.
        """
        if journal is not None:
            telemetry.sample_tsdb(journal.directory)

    @staticmethod
    def _record_outcomes(outcomes: Tuple[CampaignTaskResult, ...]) -> None:
        """Parent-side telemetry for freshly executed outcomes.

        Workers run under a local (or shielded) session, so all metric
        aggregation happens here, once per outcome, from the outcome
        payload itself -- identical for every backend and worker count.
        Replayed journal lines are *not* routed through this: metrics
        describe the current run; ``repro status`` covers the store.
        """
        for outcome in outcomes:
            telemetry.emit_spans(outcome.spans)
            if outcome.interventions:
                telemetry.inc_counter(
                    telemetry.M_INTERVENTIONS, amount=outcome.interventions
                )
            for record in outcome.result.records:
                for effect in record.effects:
                    telemetry.inc_counter(
                        telemetry.M_EFFECTS, effect=effect.value
                    )

    def _resolve_backend(self, n_tasks: int) -> str:
        if self.backend == "serial" or self.jobs == 1:
            return "serial"
        if self.backend == "auto" and n_tasks < self.MIN_POOL_TASKS:
            return "serial"
        if self.backend == "auto":
            return "process"
        return self.backend

    def _chunk(self, tasks: List[CampaignTask]) -> List[Tuple[CampaignTask, ...]]:
        size = self.chunk_size
        if size is None:
            size = max(1, len(tasks) // (self.jobs * 4))
        return [
            tuple(tasks[i:i + size]) for i in range(0, len(tasks), size)
        ]

    def _make_executor(self, backend: str) -> Tuple[Executor, str]:
        """Build the pool, degrading process -> thread -> serial."""
        if backend == "process":
            try:
                from concurrent.futures import ProcessPoolExecutor

                executor = ProcessPoolExecutor(max_workers=self.jobs)
                # Surface pool-construction failures (missing /dev/shm,
                # seccomp'd fork, ...) now rather than at submit time.
                executor.submit(int, 0).result()
                return executor, "process"
            except Exception as exc:  # pragma: no cover - environment-dependent
                warnings.warn(
                    f"process pool unavailable ({exc!r}); "
                    "falling back to threads",
                    RuntimeWarning,
                    stacklevel=3,
                )
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(max_workers=self.jobs), "thread"

    def _run_pool(
        self,
        backend: str,
        chunks: List[Tuple[CampaignTask, ...]],
        tracker: ProgressTracker,
        checkpoint: Callable[
            [Tuple[CampaignTask, ...], Tuple[CampaignTaskResult, ...]], None
        ],
        collect: bool = False,
        journal: Optional[CampaignStore] = None,
    ) -> Tuple[List[CampaignTaskResult], int]:
        executor, backend = self._make_executor(backend)
        outcomes: List[CampaignTaskResult] = []
        retried = 0
        try:
            pending: Dict[Future, Tuple[CampaignTask, ...]] = {
                executor.submit(
                    run_campaign_chunk, self.spec, self.config, chunk, collect,
                    self.use_kernel,
                ): chunk
                for chunk in chunks
            }
            submitted = {future: telemetry.clock() for future in pending}
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    chunk = pending.pop(future)
                    try:
                        chunk_outcomes = tuple(future.result())
                    except Exception as exc:
                        # Retry-once policy: a lost worker (OOM kill,
                        # BrokenProcessPool, pickling trouble) must not
                        # lose the grid.  The chunk re-runs in-process;
                        # seeds are per-task, so the retry is
                        # bit-identical to what the worker would have
                        # produced.
                        warnings.warn(
                            f"worker chunk failed ({exc!r}); "
                            "retrying in-process",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        retried += 1
                        telemetry.inc_counter(telemetry.M_CHUNKS_RETRIED)
                        telemetry.event(
                            "engine.chunk_retry",
                            tasks=len(chunk),
                            error=repr(exc),
                        )
                        chunk_outcomes = run_campaign_chunk(
                            self.spec, self.config, chunk, collect,
                            self.use_kernel,
                        )
                    # Submit-to-drain latency: includes queue wait, which
                    # is the number that matters for pool sizing.
                    telemetry.observe(
                        telemetry.M_CHUNK_SECONDS,
                        telemetry.clock() - submitted[future],
                    )
                    checkpoint(chunk, chunk_outcomes)
                    self._record_outcomes(chunk_outcomes)
                    self._sample_tsdb(journal)
                    outcomes.extend(chunk_outcomes)
                    tracker.advance(len(chunk))
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return outcomes, retried

    # -- assembly ---------------------------------------------------------

    def _assemble(
        self,
        tasks: List[CampaignTask],
        outcomes: List[CampaignTaskResult],
        backend: str,
        retried: int,
        tasks_skipped: int = 0,
    ) -> EngineReport:
        """Deterministic grid assembly, independent of completion order."""
        by_task: Dict[Tuple[str, int, int], CampaignTaskResult] = {
            (o.benchmark, o.core, o.campaign_index): o for o in outcomes
        }
        grid: Dict[Tuple[str, int], List[CampaignResult]] = {}
        raw_logs: Dict[Tuple[str, int, int, int], str] = {}
        interventions = 0
        for task in tasks:  # reference order: (workload, core, campaign)
            outcome = by_task[(task.program.name, task.core, task.campaign_index)]
            grid.setdefault(outcome.grid_key, []).append(outcome.result)
            raw_logs[outcome.raw_log_key] = outcome.raw_log
            interventions += outcome.interventions
        results = {
            key: CharacterizationResult(campaigns=tuple(campaigns))
            for key, campaigns in grid.items()
        }
        return EngineReport(
            results=results,
            raw_logs=raw_logs,
            interventions=interventions,
            tasks_run=len(tasks) - tasks_skipped,
            chunks_retried=retried,
            backend=backend,
            jobs=1 if backend == "serial" else self.jobs,
            tasks_skipped=tasks_skipped,
        )

    @staticmethod
    def _as_program(workload: object) -> Program:
        if isinstance(workload, Program):
            return workload
        if isinstance(workload, Benchmark):
            return workload.programs()[0]
        raise ConfigurationError(
            f"expected a Program or Benchmark, got {type(workload).__name__}"
        )
