"""Progress reporting for long-running characterization grids.

A fleet-scale characterization is thousands of campaigns; the paper's
own campaigns ran unattended for six months, and the one operational
lesson that survives simulation is that long grids need a heartbeat.
:class:`ProgressReporter` is the engine's hook for that heartbeat:

* :data:`NULL_PROGRESS` -- the no-op default.  Library callers that
  never ask for progress pay a single method call per completed chunk
  and nothing else.
* :class:`ConsoleProgress` -- a single-line console reporter (counts,
  percentage, elapsed, ETA) used by the CLI and the examples.
* :class:`ProgressTracker` -- the bookkeeping helper the engine feeds.

The tracker keeps **no private counters**: completions go through the
``repro_engine_tasks_completed_total`` counter and per-task latency
through the ``repro_engine_task_seconds`` histogram of a
:class:`~repro.telemetry.MetricsRegistry` (the ambient session's, when
one is active), and the ETA shown on the console is derived from that
same histogram -- progress output and exported metrics can never
disagree.  The ETA remains a plain linear extrapolation (mean task
seconds x tasks left): campaign tasks are near-uniform in cost, so
anything fancier is noise.  The clock is the injected telemetry
monotonic clock, never read inside simulation code (RPR002).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Optional, TextIO

from ..telemetry import (
    MONOTONIC_CLOCK,
    Clock,
    M_GRID_TASKS,
    M_TASK_SECONDS,
    M_TASKS_COMPLETED,
    M_THROUGHPUT,
    MetricsRegistry,
    current_session,
)


@dataclass(frozen=True)
class ProgressEvent:
    """One progress observation of a running grid."""

    #: Completed and total task counts (one task = one campaign).
    completed: int
    total: int
    #: Seconds since the grid started.
    elapsed_s: float
    #: Estimated seconds left, from the task-latency histogram;
    #: ``None`` until at least one task has completed.
    eta_s: Optional[float]

    @property
    def fraction(self) -> float:
        return self.completed / self.total if self.total else 1.0


class ProgressReporter:
    """No-op base reporter; subclass and override what you need."""

    def on_start(self, total: int) -> None:
        """Called once before the first task is scheduled."""

    def on_progress(self, event: ProgressEvent) -> None:
        """Called after every completed scheduling chunk."""

    def on_finish(self, event: ProgressEvent) -> None:
        """Called once after the last task has completed."""


#: Shared no-op reporter -- the default everywhere.
NULL_PROGRESS = ProgressReporter()


class ConsoleProgress(ProgressReporter):
    """Single-line console progress (CLI and examples).

    Writes carriage-return-refreshed status lines, and a newline on
    completion so subsequent output starts clean.  Counts and ETA come
    straight from the tracker's metrics registry via the events it
    emits.
    """

    def __init__(self, stream: Optional[TextIO] = None, label: str = "campaigns") -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.label = label

    def _render(self, event: ProgressEvent) -> str:
        eta = f"{event.eta_s:6.1f}s" if event.eta_s is not None else "   ?  "
        return (
            f"\r{self.label}: {event.completed}/{event.total} "
            f"({100 * event.fraction:5.1f} %)  "
            f"elapsed {event.elapsed_s:6.1f}s  eta {eta}"
        )

    def on_progress(self, event: ProgressEvent) -> None:
        self.stream.write(self._render(event))
        self.stream.flush()

    def on_finish(self, event: ProgressEvent) -> None:
        self.stream.write(self._render(event) + "\n")
        self.stream.flush()


class ProgressTracker:
    """Feeds a :class:`ProgressReporter` from the engine's completions.

    All bookkeeping lives in a metrics registry: the ambient telemetry
    session's when one is active (so ``--metrics`` exports exactly what
    the console showed), else a private registry.  Counter and
    histogram values may carry history from earlier runs in the same
    session, so the tracker baselines them at construction.
    """

    def __init__(
        self,
        total: int,
        reporter: ProgressReporter = NULL_PROGRESS,
        registry: Optional[MetricsRegistry] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        if registry is None:
            session = current_session()
            if session is not None and session.metrics is not None:
                registry = session.metrics
            else:
                registry = MetricsRegistry()
        if clock is None:
            session = current_session()
            clock = session.clock if session is not None else MONOTONIC_CLOCK
        self.total = int(total)
        self.reporter = reporter
        self.registry = registry
        self._clock = clock
        self._start = clock()
        self._last = self._start
        self._base_completed = registry.counter(M_TASKS_COMPLETED).value
        self._base_latency_sum = registry.histogram(M_TASK_SECONDS).sum
        registry.gauge(M_GRID_TASKS).set(self.total)
        self.reporter.on_start(self.total)

    @property
    def completed(self) -> int:
        """Tasks completed under this tracker, read from the counter."""
        counter = self.registry.counter(M_TASKS_COMPLETED)
        return int(counter.value - self._base_completed)

    def _mean_task_seconds(self) -> Optional[float]:
        """Mean per-task latency observed by this tracker."""
        if self.completed <= 0:
            return None
        histogram = self.registry.histogram(M_TASK_SECONDS)
        return (histogram.sum - self._base_latency_sum) / self.completed

    def _event(self) -> ProgressEvent:
        elapsed = self._clock() - self._start
        completed = self.completed
        eta: Optional[float] = None
        mean = self._mean_task_seconds()
        if completed >= self.total:
            eta = 0.0
        elif mean is not None:
            eta = mean * (self.total - completed)
        return ProgressEvent(
            completed=completed,
            total=self.total,
            elapsed_s=elapsed,
            eta_s=eta,
        )

    def advance(self, count: int = 1) -> ProgressEvent:
        """Record ``count`` newly completed tasks and notify."""
        count = int(count)
        now = self._clock()
        if count > 0:
            per_task = (now - self._last) / count
            histogram = self.registry.histogram(M_TASK_SECONDS)
            for _ in range(count):
                histogram.observe(per_task)
            self.registry.counter(M_TASKS_COMPLETED).inc(count)
        self._last = now
        event = self._event()
        self.reporter.on_progress(event)
        return event

    def finish(self) -> ProgressEvent:
        """Emit the terminal event and publish the run's throughput."""
        event = self._event()
        if event.elapsed_s > 0:
            self.registry.gauge(M_THROUGHPUT).set(
                event.completed / event.elapsed_s
            )
        self.reporter.on_finish(event)
        return event
