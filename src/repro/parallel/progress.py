"""Progress reporting for long-running characterization grids.

A fleet-scale characterization is thousands of campaigns; the paper's
own campaigns ran unattended for six months, and the one operational
lesson that survives simulation is that long grids need a heartbeat.
:class:`ProgressReporter` is the engine's hook for that heartbeat:

* :data:`NULL_PROGRESS` -- the no-op default.  Library callers that
  never ask for progress pay a single method call per completed chunk
  and nothing else.
* :class:`ConsoleProgress` -- a single-line console reporter (counts,
  percentage, elapsed, ETA) used by the CLI and the examples.
* :class:`ProgressTracker` -- the bookkeeping helper the engine feeds;
  it timestamps completions and emits :class:`ProgressEvent` values to
  whichever reporter is attached.

The ETA is a plain linear extrapolation (elapsed / completed * left):
campaign tasks are near-uniform in cost, so anything fancier is noise.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Optional, TextIO


@dataclass(frozen=True)
class ProgressEvent:
    """One progress observation of a running grid."""

    #: Completed and total task counts (one task = one campaign).
    completed: int
    total: int
    #: Seconds since the grid started.
    elapsed_s: float
    #: Linear-extrapolation estimate of the seconds left; ``None``
    #: until at least one task has completed.
    eta_s: Optional[float]

    @property
    def fraction(self) -> float:
        return self.completed / self.total if self.total else 1.0


class ProgressReporter:
    """No-op base reporter; subclass and override what you need."""

    def on_start(self, total: int) -> None:
        """Called once before the first task is scheduled."""

    def on_progress(self, event: ProgressEvent) -> None:
        """Called after every completed scheduling chunk."""

    def on_finish(self, event: ProgressEvent) -> None:
        """Called once after the last task has completed."""


#: Shared no-op reporter -- the default everywhere.
NULL_PROGRESS = ProgressReporter()


class ConsoleProgress(ProgressReporter):
    """Single-line console progress (CLI and examples).

    Writes carriage-return-refreshed status lines, and a newline on
    completion so subsequent output starts clean.
    """

    def __init__(self, stream: Optional[TextIO] = None, label: str = "campaigns") -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.label = label

    def _render(self, event: ProgressEvent) -> str:
        eta = f"{event.eta_s:6.1f}s" if event.eta_s is not None else "   ?  "
        return (
            f"\r{self.label}: {event.completed}/{event.total} "
            f"({100 * event.fraction:5.1f} %)  "
            f"elapsed {event.elapsed_s:6.1f}s  eta {eta}"
        )

    def on_progress(self, event: ProgressEvent) -> None:
        self.stream.write(self._render(event))
        self.stream.flush()

    def on_finish(self, event: ProgressEvent) -> None:
        self.stream.write(self._render(event) + "\n")
        self.stream.flush()


class ProgressTracker:
    """Feeds a :class:`ProgressReporter` from the engine's completions."""

    def __init__(
        self,
        total: int,
        reporter: ProgressReporter = NULL_PROGRESS,
        # reprolint: disable=RPR002 -- ETA display only, never results
        clock=time.monotonic,
    ) -> None:
        self.total = int(total)
        self.reporter = reporter
        self._clock = clock
        self._start = clock()
        self.completed = 0
        self.reporter.on_start(self.total)

    def _event(self) -> ProgressEvent:
        elapsed = self._clock() - self._start
        eta: Optional[float] = None
        if 0 < self.completed < self.total:
            eta = elapsed / self.completed * (self.total - self.completed)
        elif self.completed >= self.total:
            eta = 0.0
        return ProgressEvent(
            completed=self.completed,
            total=self.total,
            elapsed_s=elapsed,
            eta_s=eta,
        )

    def advance(self, count: int = 1) -> ProgressEvent:
        """Record ``count`` newly completed tasks and notify."""
        self.completed += int(count)
        event = self._event()
        self.reporter.on_progress(event)
        return event

    def finish(self) -> ProgressEvent:
        """Emit the terminal event."""
        event = self._event()
        self.reporter.on_finish(event)
        return event
