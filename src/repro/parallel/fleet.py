"""Fleet-wide campaign execution: one engine run per shard.

The fleet manifest pins the whole experiment -- grid, config, weights
and the machine spec behind every shard -- so running a fleet needs no
inputs beyond the fleet itself: each shard gets its own
:class:`~repro.parallel.engine.ParallelCampaignEngine` built from the
shard's spec, journaling into the shard with ``resume=True``.  Tasks
already journaled replay instead of re-executing, so
:func:`run_fleet` is idempotent and kill-safe at any point: a fleet of
N machines resumes bit-identically to N independent single-machine
runs (the shard journals are byte-identical either way).

Shards execute sequentially, each fanning its grid over the engine's
worker pool -- shard-level parallelism would stack pools without
adding throughput, since every shard already saturates ``jobs``
workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..store import FleetManifest, FleetStore
from ..workloads.benchmark import Program
from .engine import EngineReport, ParallelCampaignEngine
from .progress import NULL_PROGRESS, ProgressReporter


@dataclass(frozen=True)
class FleetRunReport:
    """Outcome of one fleet run: per-shard reports plus totals."""

    #: Shard name -> that shard's engine report, in manifest order.
    reports: Dict[str, EngineReport]
    #: The fleet manifest after the post-run watermark refresh.
    manifest: FleetManifest
    #: Tasks executed across all shards this run.
    tasks_run: int
    #: Tasks replayed from shard journals instead of executed.
    tasks_skipped: int


def run_fleet(
    fleet: Union[str, Path, FleetStore],
    jobs: int = 1,
    backend: str = "auto",
    chunk_size: Optional[int] = None,
    progress: ProgressReporter = NULL_PROGRESS,
    use_kernel: bool = True,
    shards: Optional[Sequence[str]] = None,
) -> FleetRunReport:
    """Run (or resume) every shard of a fleet to completion.

    ``shards`` restricts the run to the named shards -- the others are
    left untouched, to be run later or by another process; watermarks
    still refresh fleet-wide afterwards.
    """
    store = fleet if isinstance(fleet, FleetStore) else FleetStore.open(fleet)
    manifest = store.manifest
    programs: List[Program] = manifest_programs(manifest)
    selected = set(shards) if shards is not None else None
    if selected is not None:
        known = {entry.name for entry in manifest.shards}
        unknown = sorted(selected - known)
        if unknown:
            from ..errors import StoreError

            raise StoreError(
                f"unknown fleet shards {unknown}; known: {sorted(known)}"
            )
    reports: Dict[str, EngineReport] = {}
    for entry in manifest.shards:
        if selected is not None and entry.name not in selected:
            continue
        shard = store.shard(entry)
        engine = ParallelCampaignEngine(
            shard.manifest.spec,
            manifest.config,
            jobs=jobs,
            backend=backend,
            chunk_size=chunk_size,
            progress=progress,
            use_kernel=use_kernel,
        )
        reports[entry.name] = engine.run(
            programs, manifest.cores, store=shard, resume=True
        )
    refreshed = store.refresh_watermarks()
    return FleetRunReport(
        reports=reports,
        manifest=refreshed,
        tasks_run=sum(r.tasks_run for r in reports.values()),
        tasks_skipped=sum(r.tasks_skipped for r in reports.values()),
    )


def manifest_programs(manifest: FleetManifest) -> List[Program]:
    """The fleet grid's workload names resolved to program objects."""
    from ..workloads import get_program

    return [get_program(name) for name in manifest.workloads]


__all__ = ["FleetRunReport", "manifest_programs", "run_fleet"]
