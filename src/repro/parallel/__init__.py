"""Parallel characterization: shared-nothing campaign fan-out.

The paper's methodology is serial by physical necessity (one board,
one serial console, one watchdog); its six-month characterization
wall-clock is the cost.  In simulation every campaign owns its machine
and RNG stream, so the grid parallelizes without changing a single
result bit -- see :mod:`repro.parallel.engine` for the determinism
contract.

Public surface:

* :class:`ParallelCampaignEngine` -- fans (workload, core, campaign)
  grids over a process/thread pool, serial fallback included.
* :func:`run_fleet` -- runs/resumes every shard of a
  :class:`~repro.store.FleetStore`, one engine per machine spec
  (:mod:`repro.parallel.fleet`).
* :class:`MachineSpec` -- re-exported from :mod:`repro.machines`: the
  picklable blueprint workers rebuild, covering every registered
  extension model (droop, aging, adaptive clocking, ...).
* :func:`derive_task_seed` -- the per-task seed derivation.
* :class:`ProgressReporter` / :class:`ConsoleProgress` -- progress
  hooks (no-op by default).
"""

from .engine import BACKENDS, EngineReport, ParallelCampaignEngine
from .fleet import FleetRunReport, run_fleet
from .progress import (
    NULL_PROGRESS,
    ConsoleProgress,
    ProgressEvent,
    ProgressReporter,
    ProgressTracker,
)
from .tasks import (
    CampaignTask,
    CampaignTaskResult,
    MachineSpec,
    derive_task_seed,
    run_campaign_task,
)

__all__ = [
    "BACKENDS",
    "CampaignTask",
    "CampaignTaskResult",
    "ConsoleProgress",
    "EngineReport",
    "FleetRunReport",
    "MachineSpec",
    "NULL_PROGRESS",
    "ParallelCampaignEngine",
    "ProgressEvent",
    "ProgressReporter",
    "ProgressTracker",
    "derive_task_seed",
    "run_campaign_task",
    "run_fleet",
]
