"""Shared-nothing task and result payloads of the parallel engine.

A characterization grid decomposes into (workload, core, campaign)
tasks.  Each task is executed on its **own** freshly built
:class:`~repro.hardware.xgene2.XGene2Machine` -- workers share no
mutable state, so every payload crossing the process boundary is a
small frozen dataclass that pickles cleanly.

**Deterministic seed derivation.**  Each task's machine seed is a
child of the parent machine seed, derived with
:class:`numpy.random.SeedSequence` spawn keys from the task's stable
coordinates (benchmark name, core, campaign index).  Two properties
follow:

* the derivation is independent of scheduling -- chunking, worker
  count, backend and completion order cannot change any task's seed,
  so parallel results are bit-identical to serial ones;
* distinct tasks get statistically independent streams (the
  ``SeedSequence`` spawn guarantee), so campaign repetitions do not
  accidentally correlate.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..data.calibration import CHIP_NAMES
from ..errors import ConfigurationError
from ..faults.manifestation import ProtectionConfig
from ..hardware.xgene2 import XGene2Chip, XGene2Machine
from ..workloads.benchmark import Program

_UINT64_MASK = (1 << 64) - 1


def derive_task_seed(
    parent_seed: int, benchmark: str, core: int, campaign_index: int
) -> int:
    """Child machine seed for one (benchmark, core, campaign) task.

    Stable across processes, platforms and scheduling orders: the
    benchmark name is folded to a 64-bit key with SHA-256 (never
    Python's randomized ``hash``), and the child stream is drawn from
    ``SeedSequence(parent, spawn_key=(bench_key, core, campaign))``.
    """
    digest = hashlib.sha256(benchmark.encode("utf-8")).digest()
    bench_key = int.from_bytes(digest[:8], "little")
    sequence = np.random.SeedSequence(
        entropy=int(parent_seed) & _UINT64_MASK,
        spawn_key=(bench_key, int(core), int(campaign_index)),
    )
    return int(sequence.generate_state(1, dtype=np.uint64)[0] >> np.uint64(1))


@dataclass(frozen=True)
class MachineSpec:
    """Everything needed to rebuild a worker's machine from scratch.

    ``chip`` is a part name ("TTT"/"TFF"/"TSS") or a full
    :class:`XGene2Chip` (e.g. a generated fleet part).  The spec
    deliberately covers only constructor arguments that are plain
    data; machines carrying live extension models (droop, adaptive
    clocking, aging, rollback, injectors) cannot be shipped to worker
    processes and must be characterized in-process.
    """

    chip: object = "TTT"
    seed: int = 2017
    protection: ProtectionConfig = field(default_factory=ProtectionConfig)
    per_pmd_domains: bool = False
    failure_profile: Optional[str] = None
    use_cache_models: bool = True

    @classmethod
    def from_machine(cls, machine: XGene2Machine) -> "MachineSpec":
        """Capture a machine's rebuildable configuration.

        Raises :class:`~repro.errors.ConfigurationError` when the
        machine carries extension models the spec cannot represent.
        """
        extras = [
            name
            for name in (
                "droop_model", "adaptive_clock", "temperature_sensitivity",
                "aging_model", "rollback_unit", "injector",
            )
            if getattr(machine, name) is not None
        ]
        if extras:
            raise ConfigurationError(
                "machine has extension models a worker cannot rebuild: "
                + ", ".join(extras)
            )
        chip: object = machine.chip
        if (isinstance(chip, XGene2Chip) and chip.name in CHIP_NAMES
                and chip == XGene2Chip.part(chip.name)):
            chip = chip.name  # canonical part: ship the name, not the object
        return cls(
            chip=chip,
            seed=machine.seed,
            protection=machine.protection,
            per_pmd_domains=machine.regulator.per_pmd_domains,
            failure_profile=machine.failure_profile,
            use_cache_models=machine.use_cache_models,
        )

    def build(self, seed: Optional[int] = None) -> XGene2Machine:
        """Construct and power on a fresh machine from this spec."""
        machine = XGene2Machine(
            chip=self.chip,
            seed=self.seed if seed is None else seed,
            protection=self.protection,
            per_pmd_domains=self.per_pmd_domains,
            failure_profile=self.failure_profile,
            use_cache_models=self.use_cache_models,
        )
        machine.power_on()
        return machine


@dataclass(frozen=True)
class CampaignTask:
    """One unit of grid work: one campaign of one workload on one core."""

    program: Program
    core: int
    campaign_index: int
    #: Derived child machine seed (see :func:`derive_task_seed`).
    seed: int

    @property
    def grid_key(self) -> Tuple[str, int]:
        """The (benchmark, core) cell this campaign belongs to."""
        return (self.program.name, self.core)


@dataclass(frozen=True)
class CampaignTaskResult:
    """Everything a worker reports back for one task."""

    benchmark: str
    core: int
    campaign_index: int
    result: "CampaignResult"  # noqa: F821 -- imported lazily below
    #: Raw log text, so the parent framework's log store stays complete.
    raw_log: str
    freq_mhz: int
    #: Watchdog recoveries the worker performed during this campaign.
    interventions: int

    @property
    def grid_key(self) -> Tuple[str, int]:
        return (self.benchmark, self.core)

    @property
    def raw_log_key(self) -> Tuple[str, int, int, int]:
        return (self.benchmark, self.core, self.freq_mhz, self.campaign_index)


def run_campaign_task(
    spec: MachineSpec, config: "FrameworkConfig", task: CampaignTask  # noqa: F821
) -> CampaignTaskResult:
    """Execute one campaign on a freshly built machine (worker body)."""
    from ..core.framework import CharacterizationFramework

    machine = spec.build(seed=task.seed)
    framework = CharacterizationFramework(machine, config)
    result = framework.run_campaign(
        task.program, task.core, campaign_index=task.campaign_index
    )
    log_key = (task.program.name, task.core, config.freq_mhz, task.campaign_index)
    return CampaignTaskResult(
        benchmark=task.program.name,
        core=task.core,
        campaign_index=task.campaign_index,
        result=result,
        raw_log=framework.raw_logs[log_key],
        freq_mhz=config.freq_mhz,
        interventions=framework.watchdog.intervention_count,
    )


def run_campaign_chunk(
    spec: MachineSpec,
    config: "FrameworkConfig",  # noqa: F821
    tasks: Tuple[CampaignTask, ...],
) -> Tuple[CampaignTaskResult, ...]:
    """Worker entry point: execute a scheduling chunk of tasks."""
    return tuple(run_campaign_task(spec, config, task) for task in tasks)
