"""Shared-nothing task and result payloads of the parallel engine.

A characterization grid decomposes into (workload, core, campaign)
tasks.  Each task is executed on its **own** freshly built machine --
workers share no mutable state, so every payload crossing the process
boundary is a small frozen dataclass that pickles cleanly.  Machines
are rebuilt from a :class:`~repro.machines.MachineSpec`, which covers
*every* registered extension model (droop, adaptive clocking,
temperature, aging, rollback, scripted injection) -- see
:mod:`repro.machines`.  Only genuinely unregistered third-party
component models are rejected, at spec-capture time.

**Deterministic seed derivation.**  Each task's machine seed is a
child of the parent machine seed, derived with
:class:`numpy.random.SeedSequence` spawn keys from the task's stable
coordinates (benchmark name, core, campaign index).  Two properties
follow:

* the derivation is independent of scheduling -- chunking, worker
  count, backend and completion order cannot change any task's seed,
  so parallel results are bit-identical to serial ones;
* distinct tasks get statistically independent streams (the
  ``SeedSequence`` spawn guarantee), so campaign repetitions do not
  accidentally correlate.

**Telemetry.**  Ambient telemetry contexts do not cross process
boundaries, so each task runs under its own local session: when span
collection is on, a fresh tracer records the task's spans into the
``spans`` field of the result, and the parent engine forwards them to
its sink; when it is off, the task runs *shielded* so framework-level
instrumentation can never fire into an inherited session (thread
backend) and double-count with the parent's outcome-based metric
aggregation.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..machines import MachineSpec
from ..telemetry import SpanRecord, Tracer, shielded, task_trace, telemetry_session
from ..workloads.benchmark import Program

__all__ = [
    "CampaignTask",
    "CampaignTaskResult",
    "MachineSpec",
    "derive_task_seed",
    "run_campaign_task",
    "run_campaign_chunk",
]

_UINT64_MASK = (1 << 64) - 1


def derive_task_seed(
    parent_seed: int, benchmark: str, core: int, campaign_index: int
) -> int:
    """Child machine seed for one (benchmark, core, campaign) task.

    Stable across processes, platforms and scheduling orders: the
    benchmark name is folded to a 64-bit key with SHA-256 (never
    Python's randomized ``hash``), and the child stream is drawn from
    ``SeedSequence(parent, spawn_key=(bench_key, core, campaign))``.
    """
    digest = hashlib.sha256(benchmark.encode("utf-8")).digest()
    bench_key = int.from_bytes(digest[:8], "little")
    sequence = np.random.SeedSequence(
        entropy=int(parent_seed) & _UINT64_MASK,
        spawn_key=(bench_key, int(core), int(campaign_index)),
    )
    return int(sequence.generate_state(1, dtype=np.uint64)[0] >> np.uint64(1))


@dataclass(frozen=True)
class CampaignTask:
    """One unit of grid work: one campaign of one workload on one core."""

    program: Program
    core: int
    campaign_index: int
    #: Derived child machine seed (see :func:`derive_task_seed`).
    seed: int

    @property
    def grid_key(self) -> Tuple[str, int]:
        """The (benchmark, core) cell this campaign belongs to."""
        return (self.program.name, self.core)


@dataclass(frozen=True)
class CampaignTaskResult:
    """Everything a worker reports back for one task."""

    benchmark: str
    core: int
    campaign_index: int
    result: "CampaignResult"  # noqa: F821 -- imported lazily below
    #: Raw log text, so the parent framework's log store stays complete.
    raw_log: str
    freq_mhz: int
    #: Watchdog recoveries the worker performed during this campaign.
    interventions: int
    #: Spans the worker recorded under its local tracer (empty unless
    #: the engine requested span collection); the existing result
    #: channel carries them back to the parent.
    spans: Tuple[SpanRecord, ...] = ()

    @property
    def grid_key(self) -> Tuple[str, int]:
        return (self.benchmark, self.core)

    @property
    def raw_log_key(self) -> Tuple[str, int, int, int]:
        return (self.benchmark, self.core, self.freq_mhz, self.campaign_index)


def _execute_task(
    spec: MachineSpec, config: "FrameworkConfig", task: CampaignTask,  # noqa: F821
    use_kernel: bool = True,
) -> CampaignTaskResult:
    from ..core.framework import CharacterizationFramework

    machine = spec.build(seed=task.seed)
    framework = CharacterizationFramework(machine, config, use_kernel=use_kernel)
    result = framework.run_campaign(
        task.program, task.core, campaign_index=task.campaign_index
    )
    log_key = (task.program.name, task.core, config.freq_mhz, task.campaign_index)
    return CampaignTaskResult(
        benchmark=task.program.name,
        core=task.core,
        campaign_index=task.campaign_index,
        result=result,
        raw_log=framework.raw_logs[log_key],
        freq_mhz=config.freq_mhz,
        interventions=framework.watchdog.intervention_count,
    )


def run_campaign_task(
    spec: MachineSpec,
    config: "FrameworkConfig",  # noqa: F821
    task: CampaignTask,
    collect_spans: bool = False,
    use_kernel: bool = True,
) -> CampaignTaskResult:
    """Execute one campaign on a freshly built machine (worker body)."""
    if not collect_spans:
        with shielded():
            return _execute_task(spec, config, task, use_kernel)
    spans: List[SpanRecord] = []
    tracer = Tracer(spans.append)
    with telemetry_session(tracer=tracer):
        with task_trace(
            task.program.name, task.core, task.campaign_index, seed=task.seed
        ):
            result = _execute_task(spec, config, task, use_kernel)
    return dataclasses.replace(result, spans=tuple(spans))


def run_campaign_chunk(
    spec: MachineSpec,
    config: "FrameworkConfig",  # noqa: F821
    tasks: Tuple[CampaignTask, ...],
    collect_spans: bool = False,
    use_kernel: bool = True,
) -> Tuple[CampaignTaskResult, ...]:
    """Worker entry point: execute a scheduling chunk of tasks."""
    return tuple(
        run_campaign_task(spec, config, task, collect_spans, use_kernel)
        for task in tasks
    )
