"""Command-line interface.

One subcommand per workflow::

    repro tables [N]                  render Tables 1-4
    repro claims                      check every model-derived claim
    repro characterize CHIP BENCH     run an undervolting campaign
                                      (or --machine spec.json)
    repro grid CHIP                   benchmark x core grid in parallel
    repro resume STORE                continue a journaled campaign grid
    repro status STORE [--models]     campaign progress, tallies, ETA,
                                      and saved model artifacts
    repro tradeoffs                   the Figure-9 ladder + headlines
    repro predict                     the Section-4.3 studies
    repro predict --model STORE       serve the latest trained artifact
    repro train STORE [--follow]      stream-train models from a journal
    repro fleet                       generated-fleet Vmin statistics
    repro fleet init FLEET_DIR        create a sharded fleet store
    repro fleet run FLEET_DIR         run/resume every shard of a fleet
    repro fleet status FLEET_DIR      cross-shard progress (warm indexes)
    repro fleet query FLEET_DIR       Vmin/severity/feature queries
                                      (--json [--reparse] for the
                                      index-equals-reparse byte check)
    repro fleet compact FLEET_DIR     fold complete shards into
                                      grid-order segments
    repro analyze TRACE_DIR [--json]  trace analytics: critical path,
                                      per-phase attribution, stragglers
    repro dash STORE [--once]         live dashboard: progress, tsdb
                                      metrics, ETA, health verdicts
    repro lint [PATH...]              reprolint invariant checker

All numbers are deterministic in ``--seed``.  Long runs should pass
``--store DIR`` (``characterize``/``grid``): every completed campaign
is journaled there, and a killed run continues with ``repro resume
DIR`` -- ending bit-identical to an uninterrupted one.

``characterize``/``grid``/``resume`` take ``--trace DIR`` (JSONL span
traces), ``--metrics FILE`` (metrics export; Prometheus text for
``.prom``/``.txt``, JSON snapshot otherwise) and ``--tsdb`` (append
periodic registry snapshots to the store's ``tsdb.jsonl`` time-series
journal, which ``repro dash`` and the health rules read).  Telemetry
is determinism-neutral: enabling it changes no journaled byte.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from . import __version__, telemetry
from .analysis.lint.cli import build_lint_parser, run_lint
from .analysis.report import check_claims, render_claims
from .analysis.tables import (
    render_table,
    table1_prior_work,
    table2_parameters,
    table3_effects,
    table4_weights,
)
from .core import CharacterizationFramework, FrameworkConfig
from .core.results import ResultStore
from .data.calibration import CHIP_NAMES
from .energy import figure9_ladder, headline_savings
from .errors import CampaignError, ConfigurationError
from .hardware import ChipGenerator, fleet_vmin_distribution
from .machines import MachineSpec, build_machine, load_machine_spec
from .parallel import ConsoleProgress
from .prediction import (
    TRAINABLE_TARGETS,
    FeatureAssembler,
    PredictionPipeline,
    StreamingTrainer,
)
from .store import CampaignStore
from .units import PMD_NOMINAL_MV
from .workloads import all_programs, get_benchmark


def _cmd_tables(args: argparse.Namespace) -> int:
    tables = {
        1: ("Table 1: summary of studies on commercial chips", table1_prior_work),
        2: ("Table 2: basic parameters of APM X-Gene 2", table2_parameters),
        3: ("Table 3: effects classification", table3_effects),
        4: ("Table 4: severity weights", table4_weights),
    }
    wanted = [args.number] if args.number else sorted(tables)
    for number in wanted:
        title, builder = tables[number]
        print(title)
        print(render_table(*builder()))
        print()
    return 0


def _cmd_claims(_args: argparse.Namespace) -> int:
    checks = check_claims()
    print(render_claims(checks))
    failed = [c for c in checks if not c.passed]
    print(f"\n{len(checks) - len(failed)}/{len(checks)} claims reproduced")
    return 1 if failed else 0


def _characterization_spec(args: argparse.Namespace) -> Optional[MachineSpec]:
    """Resolve a characterization subcommand's machine blueprint.

    A ``--machine spec.json`` file, a chip name, or both (the chip
    overrides the spec's); ``--seed`` always overrides.  Returns None
    (after printing to stderr) when the machine is under-specified or
    the spec file is invalid.
    """
    if args.machine is not None:
        try:
            spec = load_machine_spec(args.machine)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return None
        if args.chip is not None:
            spec = dataclasses.replace(spec, chip=args.chip)
    elif args.chip is not None:
        spec = MachineSpec(chip=args.chip)
    else:
        print("error: pass a CHIP name or --machine spec.json",
              file=sys.stderr)
        return None
    if args.seed is not None:
        spec = dataclasses.replace(spec, seed=args.seed)
    return spec


@contextmanager
def _telemetry_scope(args: argparse.Namespace) -> Iterator[None]:
    """Install the ambient telemetry session a subcommand asked for.

    ``--trace DIR`` attaches a tracer writing per-trace JSONL files
    (span ids start at ``PARENT_SPAN_ID_BASE`` so parent-side events
    never collide with worker-recorded spans sharing a trace file);
    ``--metrics FILE`` attaches a registry exported when the command
    finishes; ``--tsdb`` attaches a registry (if ``--metrics`` did not
    already) plus a sampler the engine snapshots it through into the
    store's ``tsdb.jsonl`` after every durable checkpoint.  Without
    any of the flags, no session is installed and every telemetry call
    in the library stays a no-op.
    """
    trace_dir = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    tsdb = bool(getattr(args, "tsdb", False))
    if trace_dir is None and metrics_path is None and not tsdb:
        yield
        return
    tracer = None
    if trace_dir is not None:
        tracer = telemetry.Tracer(
            telemetry.TraceWriter(trace_dir),
            first_id=telemetry.PARENT_SPAN_ID_BASE,
        )
    metrics = (
        telemetry.MetricsRegistry()
        if metrics_path is not None or tsdb else None
    )
    sampler = telemetry.TsdbSampler() if tsdb else None
    with telemetry.telemetry_session(
        tracer=tracer, metrics=metrics, tsdb=sampler
    ):
        try:
            yield
        finally:
            if metrics is not None and metrics_path is not None:
                metrics.write(metrics_path)
                print(f"metrics exported to {metrics_path}", file=sys.stderr)


def _cmd_characterize(args: argparse.Namespace) -> int:
    with _telemetry_scope(args):
        return _run_characterize(args)


def _run_characterize(args: argparse.Namespace) -> int:
    spec = _characterization_spec(args)
    if spec is None:
        return 2
    machine = build_machine(spec)
    framework = CharacterizationFramework(
        machine,
        FrameworkConfig(start_mv=args.start_mv, campaigns=args.campaigns),
    )
    bench = get_benchmark(args.benchmark)
    print(f"characterizing {bench.name} on {machine.chip.name} "
          f"core {args.core} ({args.campaigns} campaigns) ...")
    if args.jobs is None and args.store is None:
        # Legacy in-place sweep: one shared machine, serial campaigns.
        result = framework.characterize(bench, core=args.core)
        recoveries = framework.watchdog.intervention_count
    else:
        # Engine path: campaigns fan out over `--jobs` workers with
        # per-campaign derived seeds (bit-identical for any job count).
        # `--store` journals each completed campaign for `repro resume`.
        try:
            grid = framework.characterize_many(
                [bench], [args.core], jobs=args.jobs or 1,
                progress=ConsoleProgress(), store=args.store,
            )
        except CampaignError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        result = grid[(bench.name, args.core)]
        recoveries = framework.last_engine_report.interventions
    regions = result.pooled_regions()
    print(f"safe Vmin      : {result.highest_vmin_mv} mV")
    print(f"crash level    : {result.highest_crash_mv} mV")
    print(f"guardband      : {regions.guardband_mv(PMD_NOMINAL_MV)} mV")
    print(f"recoveries     : {recoveries}")
    print("severity:")
    severity = result.severity_by_voltage()
    for voltage in sorted(severity, reverse=True):
        if severity[voltage] > 0:
            print(f"  {voltage} mV  {severity[voltage]:6.2f}")
    if args.store:
        paths = CampaignStore.open(args.store).export_csv()
        print(f"campaign store journaled at {args.store} "
              f"(CSV: {', '.join(sorted(p.name for p in paths.values()))})")
    if args.out:
        store = ResultStore(args.out)
        store.write_runs_csv([result])
        store.write_severity_csv([result])
        print(f"CSV results written to {args.out}")
    return 0


def _print_grid_summary(results) -> None:
    print(f"{'benchmark':<14} {'core':>4} {'Vmin':>6} {'crash':>6}")
    for (name, core), result in results.items():
        crash = result.highest_crash_mv
        print(f"{name:<14} {core:>4} {result.highest_vmin_mv:>4} mV "
              f"{crash if crash is not None else '--':>4} mV")


def _cmd_grid(args: argparse.Namespace) -> int:
    """Characterize a benchmark x core grid on the parallel engine."""
    with _telemetry_scope(args):
        return _run_grid(args)


def _run_grid(args: argparse.Namespace) -> int:
    benchmarks = [get_benchmark(name) for name in args.benchmarks.split(",")]
    cores = [int(c) for c in args.cores.split(",")]
    spec = _characterization_spec(args)
    if spec is None:
        return 2
    machine = build_machine(spec)
    framework = CharacterizationFramework(
        machine,
        FrameworkConfig(
            start_mv=args.start_mv,
            campaigns=args.campaigns,
            runs_per_level=args.runs_per_level,
        ),
    )
    total = len(benchmarks) * len(cores) * args.campaigns
    print(f"characterizing {len(benchmarks)} benchmark(s) x {len(cores)} "
          f"core(s) x {args.campaigns} campaign(s) = {total} campaigns "
          f"on {machine.chip.name} (jobs={args.jobs}) ...")
    try:
        results = framework.characterize_many(
            benchmarks, cores, jobs=args.jobs, progress=ConsoleProgress(),
            store=args.store,
        )
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = framework.last_engine_report
    print(f"backend        : {report.backend} (jobs={report.jobs})")
    print(f"recoveries     : {report.interventions}")
    if report.chunks_retried:
        print(f"chunks retried : {report.chunks_retried}")
    _print_grid_summary(results)
    if args.store:
        CampaignStore.open(args.store).export_csv()
        print(f"campaign store journaled at {args.store}")
    if args.out:
        store = ResultStore(args.out)
        store.write_runs_csv(results.values())
        store.write_severity_csv(results.values())
        print(f"CSV results written to {args.out}")
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    """Continue a journaled grid: replay the prefix, run the remainder."""
    with _telemetry_scope(args):
        return _run_resume(args)


def _run_resume(args: argparse.Namespace) -> int:
    try:
        store = CampaignStore.open(args.store)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    manifest = store.manifest
    done = len(store.completed_keys())
    total = len(store.expected_keys())
    print(f"resuming campaign store {args.store}: {done}/{total} tasks "
          f"journaled, {total - done} to run (jobs={args.jobs}) ...")
    machine = build_machine(manifest.spec)
    framework = CharacterizationFramework(machine, manifest.config)
    try:
        results = framework.characterize_many(
            manifest.programs(), list(manifest.cores), jobs=args.jobs,
            progress=ConsoleProgress(), store=store, resume=True,
        )
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = framework.last_engine_report
    print(f"backend        : {report.backend} (jobs={report.jobs})")
    print(f"replayed       : {report.tasks_skipped} journaled task(s)")
    print(f"executed       : {report.tasks_run} task(s)")
    print(f"recoveries     : {report.interventions}")
    _print_grid_summary(results)
    store.export_csv()
    print(f"CSV artifacts exported to {store.directory}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    """Report a campaign store's progress without touching it.

    Pointed at a fleet store (a directory holding ``fleet.json``), it
    serves cross-shard status from the warm indexes instead.
    """
    from pathlib import Path

    from .store import FLEET_MANIFEST_NAME

    if (Path(args.store) / FLEET_MANIFEST_NAME).exists():
        try:
            status = telemetry.fleet_status(
                args.store, metrics_path=args.metrics
            )
        except (CampaignError, ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(telemetry.render_fleet_status(status), end="")
        return 0
    try:
        status = telemetry.campaign_status(args.store, metrics_path=args.metrics)
    except (CampaignError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(telemetry.render_status(status), end="")
    if args.models:
        try:
            models = telemetry.model_statuses(args.store)
        except CampaignError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(telemetry.render_model_status(models), end="")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Trace analytics over a ``--trace`` directory.

    Deterministic by construction: the same trace directory always
    yields the same report bytes, so two ``--json`` runs can be
    compared with ``cmp``.
    """
    try:
        analysis = telemetry.analyze_trace_dir(args.trace_dir)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(analysis.serialize(), end="")
    else:
        print(telemetry.render_analysis(analysis), end="")
    return 0


def _cmd_dash(args: argparse.Namespace) -> int:
    """Live dashboard over a campaign or fleet store.

    Read-only: safe to point at a store another process is writing.
    Follows until the grid completes unless ``--once``; the tsdb
    cursors stay warm across refreshes, so each frame parses only the
    bytes appended since the previous one.
    """
    baseline: Optional[str] = args.baseline
    if baseline is not None and not Path(baseline).exists():
        print(f"error: baseline file {baseline} not found", file=sys.stderr)
        return 2
    if baseline is None:
        default = Path("benchmarks") / "framework_baseline.json"
        baseline = str(default) if default.exists() else None
    dashboard = telemetry.Dashboard(args.store, baseline=baseline)
    while True:
        try:
            snapshot = dashboard.refresh()
        except (CampaignError, ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(telemetry.render_dash(snapshot), end="")
        if args.health_out:
            with open(args.health_out, "w") as handle:
                handle.write(
                    telemetry.serialize_health(
                        snapshot.verdicts, source=str(args.store)
                    )
                )
        if args.once or snapshot.complete:
            return 0
        time.sleep(args.poll)


def _cmd_tradeoffs(args: argparse.Namespace) -> int:
    fraction = 0.25 if args.clock_tree else 0.0
    print("Figure-9 ladder:")
    for point in figure9_ladder(args.chip, clock_tree_fraction=fraction):
        print(f"  {point.label:<16} {point.chip_voltage_mv:>4} mV  "
              f"perf {100 * point.performance_rel:5.1f} %  "
              f"power {100 * point.power_rel:5.1f} %")
    print("\nheadline savings:")
    for key, value in headline_savings(args.chip).as_percent().items():
        print(f"  {key:<36} {value:>5.1f} %")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    if args.model is not None:
        return _run_predict_model(args)
    machine = build_machine(MachineSpec(chip=args.chip, seed=args.seed))
    pipeline = PredictionPipeline(machine)
    programs = all_programs()[: args.programs]
    print(f"running the Section-4.3 studies over {len(programs)} programs ...")
    print(pipeline.vmin_study(programs, core=0).summary())
    print(pipeline.severity_study(programs, core=0, max_samples=100).summary())
    print(pipeline.severity_study(programs, core=4, max_samples=90).summary())
    return 0


def _store_core(store: CampaignStore, requested: Optional[int]) -> int:
    """Resolve a --core flag against the store's grid (default: first)."""
    if requested is None:
        return store.manifest.cores[0]
    if requested not in store.manifest.cores:
        raise CampaignError(
            f"core {requested} is not in the store grid "
            f"{store.manifest.cores!r}"
        )
    return requested


def _run_predict_model(args: argparse.Namespace) -> int:
    """Serve the latest trained model artifacts of a campaign store."""
    try:
        store = CampaignStore.open(args.model)
        core = _store_core(store, args.core)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    models = store.model_store()
    series = [(t, c) for t, c in models.series() if c == core]
    if not series:
        print(f"error: no model artifacts for core {core} under "
              f"{models.models_path}; run `repro train {args.model}` first",
              file=sys.stderr)
        return 2
    assembler = FeatureAssembler()
    for target, _ in series:
        artifact = models.load(target, core)
        print(f"{target} model v{artifact.version}: trained on "
              f"{artifact.n_samples} samples through journal offset "
              f"{artifact.journal_offset}")
        for key in sorted(artifact.metrics):
            print(f"  {key:<24} {artifact.metrics[key]:8.3f}")
        if not artifact.is_servable:
            print("  (not servable yet: journal too shallow to select "
                  "features)")
            continue
        print("  features: " + ", ".join(artifact.selected_features))
        if target != "vmin":
            continue
        print(f"  {'benchmark':<14} {'predicted':>9} {'journaled':>9}")
        for program in store.manifest.programs():
            # Canonical serving profile: a machine built fresh from the
            # store's spec per program (matches the training features).
            machine = store.manifest.spec.build()
            snapshot = machine.profile_program(program, core=0)
            predicted = artifact.predict_row(assembler.vector_by_name(snapshot))
            try:
                actual = f"{store.result_for(program.name, core).highest_vmin_mv:>6} mV"
            except CampaignError:
                actual = "     --"
            print(f"  {program.name:<14} {predicted:>6.1f} mV {actual:>9}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    """Stream-train prediction models from a store journal."""
    with _telemetry_scope(args):
        return _run_train(args)


def _run_train(args: argparse.Namespace) -> int:
    try:
        store = CampaignStore.open(args.store)
        core = _store_core(store, args.core)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    targets = TRAINABLE_TARGETS if args.target == "all" else (args.target,)
    trainers: Dict[str, StreamingTrainer] = {}
    models = store.model_store()
    for target in targets:
        # Resume from the latest saved artifact when one exists, so a
        # killed `repro train` never replays consumed journal records.
        if models.versions(target, core):
            artifact = models.load(target, core)
            trainers[target] = StreamingTrainer.resume(store, artifact)
            print(f"{target} c{core}: resuming from v{artifact.version} "
                  f"(journal offset {artifact.journal_offset})")
        else:
            trainers[target] = StreamingTrainer(store, core, target=target)
    while True:
        for target, trainer in trainers.items():
            consumed = trainer.consume()
            if consumed == 0 and not args.follow:
                print(f"{target} c{core}: no new journal records; "
                      f"checkpointing at offset {trainer.journal_offset}")
            if consumed or not args.follow:
                saved = models.save(trainer.fit())
                drift = trainer.drift_ratio
                drift_text = f"{drift:.3f}" if drift is not None else "--"
                print(f"{target} c{core}: v{saved.version} saved "
                      f"(+{consumed} cells, {saved.n_samples} samples, "
                      f"offset {saved.journal_offset}, drift {drift_text})")
        if not args.follow:
            return 0
        if store.is_complete():
            print("store complete; follow mode done")
            return 0
        time.sleep(args.poll)
        for trainer in trainers.values():
            trainer.refresh()
        store = CampaignStore.open(args.store)


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Dispatch ``repro fleet <subcommand>``; bare ``repro fleet`` keeps
    the legacy generated-fleet Vmin statistics."""
    handler = getattr(args, "fleet_func", None)
    if handler is not None:
        return int(handler(args))
    generator = ChipGenerator(args.corner, lot_seed=args.seed)
    fleet = generator.fleet(args.count)
    stats = fleet_vmin_distribution(fleet)
    print(f"{args.count} generated {args.corner}-population parts "
          f"(worst-case chip Vmin @2.4 GHz):")
    for key in ("mean_mv", "std_mv", "min_mv", "max_mv"):
        print(f"  {key:<10} {stats[key]:8.1f}")
    print(f"  one fleet-wide setting wastes "
          f"{100 * stats['fleet_setting_penalty']:.1f} % power vs per-chip "
          f"settings")
    return 0


def _cmd_fleet_init(args: argparse.Namespace) -> int:
    """Create a fleet store: one campaign shard per machine seed."""
    from .store import FleetStore
    from .workloads import get_program

    if args.seeds is not None:
        seeds = [int(s) for s in args.seeds.split(",")]
    else:
        seeds = [args.seed_base + i for i in range(args.machines)]
    try:
        names = [
            get_benchmark(name).programs()[0].name
            for name in args.benchmarks.split(",")
        ]
        for name in names:  # fail fast on unresolvable program names
            get_program(name)
        specs = [MachineSpec(chip=args.chip, seed=seed) for seed in seeds]
        fleet = FleetStore.create(
            args.fleet_dir,
            specs,
            FrameworkConfig(
                start_mv=args.start_mv,
                campaigns=args.campaigns,
                runs_per_level=args.runs_per_level,
            ),
            names,
            [int(c) for c in args.cores.split(",")],
        )
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    manifest = fleet.manifest
    print(f"fleet store initialized at {args.fleet_dir}: "
          f"{len(manifest.shards)} shard(s), "
          f"{manifest.tasks_total()} task(s) total")
    for entry, spec in zip(manifest.shards, specs):
        print(f"  {entry.name}  seed {spec.seed}  "
              f"spec {entry.spec_digest[:12]}  ({entry.path})")
    print(f"run it with `repro fleet run {args.fleet_dir}`")
    return 0


def _cmd_fleet_run(args: argparse.Namespace) -> int:
    """Run (or resume) every shard of a fleet to completion."""
    with _telemetry_scope(args):
        return _run_fleet_cmd(args)


def _run_fleet_cmd(args: argparse.Namespace) -> int:
    from .parallel import run_fleet

    shards = args.shards.split(",") if args.shards else None
    try:
        report = run_fleet(
            args.fleet_dir, jobs=args.jobs, progress=ConsoleProgress(),
            shards=shards,
        )
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for name, shard_report in report.reports.items():
        print(f"{name}: +{shard_report.tasks_run} task(s) executed, "
              f"{shard_report.tasks_skipped} replayed "
              f"(backend {shard_report.backend})")
    done = report.manifest.tasks_done()
    total = report.manifest.tasks_total()
    print(f"fleet progress: {done}/{total} task(s) journaled"
          + ("" if done == total else
             f"; continue with `repro fleet run {args.fleet_dir}`"))
    return 0


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    """Cross-shard progress served from the warm indexes."""
    try:
        status = telemetry.fleet_status(
            args.fleet_dir, metrics_path=args.metrics
        )
    except (CampaignError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(telemetry.render_fleet_status(status), end="")
    return 0


def _cmd_fleet_query(args: argparse.Namespace) -> int:
    """Answer Vmin/severity queries from the warm fleet indexes.

    ``--json`` emits the canonical index serialization (built inside
    ``repro.store`` -- the single sanctioned writer of index bytes);
    adding ``--reparse`` recomputes the same bytes through a full
    journal re-parse, so piping both through ``diff`` checks the
    index-equals-reparse contract end to end.
    """
    from .store import FleetStore

    try:
        fleet = FleetStore.open(args.fleet_dir)
        indexes = fleet.indexes(feature_target=args.target)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        text = (
            indexes.serialize_reparse() if args.reparse
            else indexes.serialize()
        )
        print(text, end="")
        return 0
    for entry, bundle in indexes.bundles():
        print(f"{entry.name} (spec {entry.spec_digest[:12]}):")
        cells = [
            (name, core)
            for name, core in bundle.vmin.cells()
            if (args.benchmark is None or name == args.benchmark)
            and (args.core is None or core == args.core)
        ]
        if not cells:
            print("  (no completed cells match)")
            continue
        for name, core in cells:
            crash = bundle.vmin.crash_mv(name, core)
            severity = bundle.severity.severity_by_voltage(name, core)
            peak = max(severity.values()) if severity else 0.0
            print(f"  {name} c{core}: Vmin {bundle.vmin.vmin_mv(name, core)} "
                  f"mV, crash {crash if crash is not None else '--'} mV, "
                  f"peak severity {peak:.2f}")
    return 0


def _cmd_fleet_compact(args: argparse.Namespace) -> int:
    """Fold complete shards into canonical grid-order segments."""
    from .store import FleetStore

    try:
        fleet = FleetStore.open(args.fleet_dir)
        compacted = fleet.compact(force=args.force)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if compacted:
        print(f"compacted {len(compacted)} shard(s): "
              + ", ".join(compacted))
    else:
        print("nothing to compact (no complete, uncompacted shards)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Write a self-contained markdown reproduction report."""
    lines: List[str] = [
        "# repro reproduction report",
        "",
        "Model-derived results regenerated by `repro report`; see",
        "EXPERIMENTS.md for the measurement-derived figures.",
        "",
        "## Claim checks",
        "",
        "| claim | paper | measured | status |",
        "|---|---|---|---|",
    ]
    checks = check_claims()
    for check in checks:
        status = "ok" if check.passed else "FAIL"
        lines.append(
            f"| {check.description} | {check.paper_value:g} | "
            f"{check.measured_value:g} | {status} |"
        )
    lines += ["", "## Figure 9 ladder", "",
              "| step | Vdd (mV) | perf (%) | power (%) |", "|---|---|---|---|"]
    for point in figure9_ladder():
        lines.append(
            f"| {point.label} | {point.chip_voltage_mv} | "
            f"{100 * point.performance_rel:.1f} | "
            f"{100 * point.power_rel:.1f} |"
        )
    for number, (title, builder) in {
        2: ("Table 2", table2_parameters),
        4: ("Table 4", table4_weights),
    }.items():
        lines += ["", f"## {title}", "", "```",
                  render_table(*builder()), "```"]
    if args.store:
        from .analysis.report import store_report

        try:
            lines += ["", store_report(args.store)]
        except CampaignError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    text = "\n".join(lines) + "\n"
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    return 1 if any(not c.passed for c in checks) else 0


def _job_count(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"jobs must be >= 1, got {value}")
    return value


def _chip_name(text: str) -> str:
    if text not in CHIP_NAMES:
        raise argparse.ArgumentTypeError(
            f"unknown chip {text!r} (choose from {', '.join(CHIP_NAMES)})"
        )
    return text


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default=None, metavar="DIR",
                        help="write span-per-task JSONL traces into DIR "
                             "(one trace-<id>.jsonl per campaign task)")
    parser.add_argument("--metrics", default=None, metavar="FILE",
                        help="export run metrics on exit; .prom/.txt "
                             "selects Prometheus text exposition, any "
                             "other extension the JSON snapshot")
    parser.add_argument("--tsdb", action="store_true",
                        help="append registry snapshots to the store's "
                             "tsdb.jsonl time-series journal after every "
                             "durable checkpoint (read by `repro dash` "
                             "and the health rules; requires --store)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Harnessing Voltage Margins for "
                    "Energy Efficiency in Multicore CPUs' (MICRO-50 2017).",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser("tables", help="render Tables 1-4")
    p_tables.add_argument("number", nargs="?", type=int, choices=(1, 2, 3, 4))
    p_tables.set_defaults(func=_cmd_tables)

    p_claims = sub.add_parser("claims", help="check the model-derived claims")
    p_claims.set_defaults(func=_cmd_claims)

    p_char = sub.add_parser("characterize", help="run a characterization")
    p_char.add_argument("chip", nargs="?", type=_chip_name, default=None,
                        help="part name; optional with --machine")
    p_char.add_argument("benchmark")
    p_char.add_argument("--machine", default=None, metavar="SPEC_JSON",
                        help="machine spec file to build the board from "
                             "(see repro.machines; extension models ride "
                             "along)")
    p_char.add_argument("--core", type=int, default=0)
    p_char.add_argument("--campaigns", type=int, default=10)
    p_char.add_argument("--start-mv", type=int, default=930)
    p_char.add_argument("--seed", type=int, default=None,
                        help="master seed (default 2017, or the spec's)")
    p_char.add_argument("--out", default=None, help="CSV output directory")
    p_char.add_argument("--store", default=None, metavar="DIR",
                        help="journal every completed campaign into a "
                             "resumable campaign store directory; like "
                             "--jobs, this switches from the legacy "
                             "in-place sweep to the engine path with "
                             "per-campaign derived seeds")
    p_char.add_argument("--jobs", type=_job_count, default=None,
                        help="fan campaigns out over N workers (derived "
                             "per-campaign seeds; identical for any N)")
    _add_telemetry_flags(p_char)
    p_char.set_defaults(func=_cmd_characterize)

    p_grid = sub.add_parser(
        "grid", help="characterize a benchmark x core grid in parallel")
    p_grid.add_argument("chip", nargs="?", type=_chip_name, default=None,
                        help="part name; optional with --machine")
    p_grid.add_argument("--machine", default=None, metavar="SPEC_JSON",
                        help="machine spec file to build the board from")
    p_grid.add_argument("--benchmarks", default="bwaves,mcf",
                        help="comma-separated benchmark names")
    p_grid.add_argument("--cores", default="0,4",
                        help="comma-separated core indices")
    p_grid.add_argument("--campaigns", type=int, default=3)
    p_grid.add_argument("--runs-per-level", type=int, default=10)
    p_grid.add_argument("--start-mv", type=int, default=930)
    p_grid.add_argument("--seed", type=int, default=None,
                        help="master seed (default 2017, or the spec's)")
    p_grid.add_argument("--jobs", type=_job_count, default=1,
                        help="worker count for the campaign fan-out")
    p_grid.add_argument("--out", default=None, help="CSV output directory")
    p_grid.add_argument("--store", default=None, metavar="DIR",
                        help="journal every completed campaign into a "
                             "resumable campaign store directory")
    _add_telemetry_flags(p_grid)
    p_grid.set_defaults(func=_cmd_grid)

    p_resume = sub.add_parser(
        "resume", help="continue an interrupted --store campaign grid")
    p_resume.add_argument("store", metavar="STORE",
                          help="campaign store directory to resume")
    p_resume.add_argument("--jobs", type=_job_count, default=1,
                          help="worker count for the remaining tasks")
    _add_telemetry_flags(p_resume)
    p_resume.set_defaults(func=_cmd_resume)

    p_status = sub.add_parser(
        "status", help="report a campaign store's progress and tallies")
    p_status.add_argument("store", metavar="STORE",
                          help="campaign store directory to inspect")
    p_status.add_argument("--metrics", default=None, metavar="FILE",
                          help="JSON metrics snapshot (from --metrics) to "
                               "derive the task-rate ETA from")
    p_status.add_argument("--models", action="store_true",
                          help="also list the store's saved model "
                               "artifacts (version, journal offset, "
                               "drift metrics)")
    p_status.set_defaults(func=_cmd_status)

    p_trade = sub.add_parser("tradeoffs", help="Figure 9 and headlines")
    p_trade.add_argument("--chip", choices=CHIP_NAMES, default="TTT")
    p_trade.add_argument("--clock-tree", action="store_true",
                         help="include the clock-tree residual (figure's "
                              "760 mV point)")
    p_trade.set_defaults(func=_cmd_tradeoffs)

    p_pred = sub.add_parser("predict", help="the Section-4.3 studies, or "
                                            "--model to serve a trained "
                                            "artifact")
    p_pred.add_argument("--chip", choices=CHIP_NAMES, default="TTT")
    p_pred.add_argument("--programs", type=int, default=40)
    p_pred.add_argument("--seed", type=int, default=2017)
    p_pred.add_argument("--model", default=None, metavar="STORE",
                        help="serve the latest repro-model/v1 artifacts "
                             "saved under this campaign store instead of "
                             "running the from-scratch studies")
    p_pred.add_argument("--core", type=int, default=None,
                        help="grid core to serve predictions for "
                             "(default: the store's first core; only "
                             "with --model)")
    p_pred.set_defaults(func=_cmd_predict)

    p_train = sub.add_parser(
        "train", help="stream-train prediction models from a store journal")
    p_train.add_argument("store", metavar="STORE",
                         help="campaign store directory to train from")
    p_train.add_argument("--target", choices=TRAINABLE_TARGETS + ("all",),
                         default="all",
                         help="which model(s) to train (default: all)")
    p_train.add_argument("--core", type=int, default=None,
                         help="grid core to train for (default: the "
                              "store's first core)")
    p_train.add_argument("--follow", action="store_true",
                         help="keep polling the journal and saving new "
                              "artifact versions until the grid completes")
    p_train.add_argument("--poll", type=float, default=2.0, metavar="SECONDS",
                         help="follow-mode poll interval (default 2 s)")
    _add_telemetry_flags(p_train)
    p_train.set_defaults(func=_cmd_train)

    p_report = sub.add_parser("report", help="write a markdown report")
    p_report.add_argument("--out", default=None, help="output file path")
    p_report.add_argument("--store", default=None, metavar="DIR",
                          help="append the measured grid of a campaign "
                               "store to the report")
    p_report.set_defaults(func=_cmd_report)

    p_fleet = sub.add_parser(
        "fleet",
        help="fleet-sharded campaign stores (bare: generated-fleet "
             "statistics)")
    p_fleet.add_argument("--corner", choices=CHIP_NAMES, default="TTT")
    p_fleet.add_argument("--count", type=int, default=50)
    p_fleet.add_argument("--seed", type=int, default=0)
    p_fleet.set_defaults(func=_cmd_fleet)
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command")

    pf_init = fleet_sub.add_parser(
        "init", help="create a fleet store: one journal shard per machine")
    pf_init.add_argument("fleet_dir", metavar="FLEET_DIR",
                         help="directory to create the fleet store in")
    pf_init.add_argument("--chip", type=_chip_name, default="TTT",
                         help="part name shared by every machine")
    pf_init.add_argument("--machines", type=int, default=3,
                         help="number of machines (= shards) in the fleet")
    pf_init.add_argument("--seed-base", type=int, default=2017,
                         help="machine seeds are SEED_BASE..SEED_BASE+N-1")
    pf_init.add_argument("--seeds", default=None, metavar="S1,S2,...",
                         help="explicit comma-separated machine seeds "
                              "(overrides --machines/--seed-base)")
    pf_init.add_argument("--benchmarks", default="bwaves,mcf",
                         help="comma-separated benchmark names")
    pf_init.add_argument("--cores", default="0,4",
                         help="comma-separated core indices")
    pf_init.add_argument("--campaigns", type=int, default=2,
                         help="campaigns per grid cell")
    pf_init.add_argument("--runs-per-level", type=int, default=3,
                         help="runs per undervolt level")
    pf_init.add_argument("--start-mv", type=int, default=PMD_NOMINAL_MV,
                         help="first undervolt level in mV")
    pf_init.set_defaults(fleet_func=_cmd_fleet_init)

    pf_run = fleet_sub.add_parser(
        "run", help="run (or resume) every shard of a fleet store")
    pf_run.add_argument("fleet_dir", metavar="FLEET_DIR",
                        help="fleet store directory")
    pf_run.add_argument("--jobs", type=_job_count, default=1,
                        help="worker count per shard run")
    pf_run.add_argument("--shards", default=None, metavar="NAME1,NAME2,...",
                        help="only run these shard names (default: all)")
    _add_telemetry_flags(pf_run)
    pf_run.set_defaults(fleet_func=_cmd_fleet_run)

    pf_status = fleet_sub.add_parser(
        "status", help="cross-shard progress from the warm indexes")
    pf_status.add_argument("fleet_dir", metavar="FLEET_DIR",
                           help="fleet store directory")
    pf_status.add_argument("--metrics", default=None, metavar="FILE",
                           help="JSON metrics snapshot to derive the "
                                "task-rate ETA from")
    pf_status.set_defaults(fleet_func=_cmd_fleet_status)

    pf_query = fleet_sub.add_parser(
        "query", help="answer Vmin/severity queries from the warm indexes")
    pf_query.add_argument("fleet_dir", metavar="FLEET_DIR",
                          help="fleet store directory")
    pf_query.add_argument("--benchmark", default=None,
                          help="restrict to one benchmark")
    pf_query.add_argument("--core", type=int, default=None,
                          help="restrict to one core")
    pf_query.add_argument("--target", default="vmin",
                          help="prediction feature target (default vmin)")
    pf_query.add_argument("--json", action="store_true",
                          help="emit the canonical index serialization")
    pf_query.add_argument("--reparse", action="store_true",
                          help="with --json: recompute the same bytes "
                               "through a full journal re-parse (must be "
                               "identical -- the index-equals-reparse "
                               "contract)")
    pf_query.set_defaults(fleet_func=_cmd_fleet_query)

    pf_compact = fleet_sub.add_parser(
        "compact", help="fold complete shards into grid-order segments")
    pf_compact.add_argument("fleet_dir", metavar="FLEET_DIR",
                            help="fleet store directory")
    pf_compact.add_argument("--force", action="store_true",
                            help="compact even when a saved model's "
                                 "streaming cursor points mid-journal")
    pf_compact.set_defaults(fleet_func=_cmd_fleet_compact)

    p_analyze = sub.add_parser(
        "analyze", help="trace analytics over a --trace directory")
    p_analyze.add_argument("trace_dir", metavar="TRACE_DIR",
                           help="directory of trace-*.jsonl span files "
                                "written by --trace")
    p_analyze.add_argument("--json", action="store_true",
                           help="emit the canonical repro-analysis/v1 "
                                "JSON instead of the terminal report")
    p_analyze.set_defaults(func=_cmd_analyze)

    p_dash = sub.add_parser(
        "dash", help="live dashboard over a campaign or fleet store")
    p_dash.add_argument("store", metavar="STORE",
                        help="campaign store or fleet directory to watch")
    p_dash.add_argument("--once", action="store_true",
                        help="render a single frame and exit")
    p_dash.add_argument("--follow", action="store_true",
                        help="keep refreshing until the grid completes "
                             "(the default; --once overrides)")
    p_dash.add_argument("--poll", type=float, default=2.0, metavar="SECONDS",
                        help="follow-mode refresh interval (default 2 s)")
    p_dash.add_argument("--baseline", default=None, metavar="FILE",
                        help="framework baseline JSON for the throughput "
                             "health floor (default: benchmarks/"
                             "framework_baseline.json when present)")
    p_dash.add_argument("--health-out", default=None, metavar="FILE",
                        help="write the repro-health/v1 verdict report "
                             "here on every refresh")
    p_dash.set_defaults(func=_cmd_dash)

    p_lint = sub.add_parser(
        "lint", help="check the repo's reprolint invariants (RPR001-013)")
    build_lint_parser(p_lint)
    p_lint.set_defaults(func=run_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
